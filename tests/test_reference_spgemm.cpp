// The sequential reference SpGEMM itself is validated against the dense
// O(n^3) oracle, plus the intermediate-product counting of Algorithm 2.
#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/dense.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

void expect_matches_dense(const CsrMatrix<double>& a, const CsrMatrix<double>& b)
{
    const auto c = reference_spgemm(a, b);
    const auto cd = from_dense<double>(dense_multiply(to_dense(a), to_dense(b)));
    // structural note: reference keeps structurally-nonzero entries even if
    // the value cancels to zero, so compare densely.
    const auto dc = to_dense(c);
    const auto dd = dense_multiply(to_dense(a), to_dense(b));
    for (index_t i = 0; i < c.rows; ++i) {
        for (index_t j = 0; j < c.cols; ++j) {
            EXPECT_NEAR(dc.at(i, j), dd.at(i, j), 1e-9) << i << "," << j;
        }
    }
    (void)cd;
}

TEST(ReferenceSpgemm, MatchesDenseOracleSquare)
{
    for (const std::uint64_t seed : {1U, 2U, 3U}) {
        const auto a = gen::uniform_random(30, 30, 5, seed);
        expect_matches_dense(a, a);
    }
}

TEST(ReferenceSpgemm, MatchesDenseOracleRectangular)
{
    const auto a = gen::uniform_random(14, 25, 6, 4);
    const auto b = gen::uniform_random(25, 19, 4, 5);
    expect_matches_dense(a, b);
}

TEST(ReferenceSpgemm, OutputSortedNoDuplicates)
{
    const auto a = gen::uniform_random(100, 100, 7, 6);
    const auto c = reference_spgemm(a, a);
    EXPECT_TRUE(c.has_sorted_rows());
}

TEST(ReferenceSpgemm, DimensionMismatchThrows)
{
    const auto a = gen::uniform_random(5, 6, 2, 7);
    EXPECT_THROW((void)reference_spgemm(a, a), PreconditionError);
}

TEST(IntermediateProducts, HandComputed)
{
    // A row 0 references columns {0,1}; nnz(B row 0)=2, nnz(B row 1)=3.
    CsrMatrix<double> a(2, 2, {0, 2, 3}, {0, 1, 0}, {1, 1, 1});
    CsrMatrix<double> b(2, 3, {0, 2, 5}, {0, 1, 0, 1, 2}, {1, 1, 1, 1, 1});
    EXPECT_EQ(row_intermediate_products(a, b, 0), 5);
    EXPECT_EQ(row_intermediate_products(a, b, 1), 2);
    EXPECT_EQ(total_intermediate_products(a, b), 7);
    EXPECT_EQ(intermediate_products_per_row(a, b), (std::vector<index_t>{5, 2}));
}

TEST(IntermediateProducts, UpperBoundsOutputNnz)
{
    const auto a = gen::uniform_random(200, 200, 6, 8);
    const auto per_row = intermediate_products_per_row(a, a);
    const auto nnz = reference_row_nnz(a, a);
    for (index_t i = 0; i < a.rows; ++i) {
        EXPECT_LE(nnz[to_size(i)], per_row[to_size(i)]) << i;
    }
}

TEST(IntermediateProducts, IdentitySquaredEqualsN)
{
    const auto i = CsrMatrix<double>::identity(123);
    EXPECT_EQ(total_intermediate_products(i, i), 123);
}

TEST(ReferenceRowNnz, MatchesFullComputation)
{
    const auto a = gen::uniform_random(150, 150, 5, 9);
    const auto nnz = reference_row_nnz(a, a);
    const auto c = reference_spgemm(a, a);
    for (index_t i = 0; i < a.rows; ++i) { EXPECT_EQ(nnz[to_size(i)], c.row_nnz(i)); }
}

TEST(ReferenceSpgemm, EmptyTimesAnything)
{
    const auto z = CsrMatrix<double>::zero(10, 20);
    const auto b = gen::uniform_random(20, 5, 3, 10);
    const auto c = reference_spgemm(z, b);
    EXPECT_EQ(c.nnz(), 0);
    EXPECT_EQ(c.rows, 10);
    EXPECT_EQ(c.cols, 5);
}

}  // namespace
}  // namespace nsparse
