// COO container, CSR<->COO conversion, transpose, symmetrize and the dense
// bridge.
#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"
#include "sparse/equality.hpp"
#include "sparse/transpose.hpp"

namespace nsparse {
namespace {

TEST(Coo, RoundTripPreservesMatrix)
{
    const auto a = gen::uniform_random(50, 70, 6, 1);
    auto coo = to_coo(a);
    coo.validate();
    EXPECT_EQ(coo.nnz(), to_size(a.nnz()));
    const auto back = to_csr(coo);
    EXPECT_TRUE(a == back);
}

TEST(Coo, SortOrdersByRowThenCol)
{
    CooMatrix<double> c;
    c.rows = c.cols = 3;
    c.row = {2, 0, 2, 0};
    c.col = {1, 2, 0, 0};
    c.val = {1, 2, 3, 4};
    c.sort();
    EXPECT_EQ(c.row, (std::vector<index_t>{0, 0, 2, 2}));
    EXPECT_EQ(c.col, (std::vector<index_t>{0, 2, 0, 1}));
    EXPECT_EQ(c.val, (std::vector<double>{4, 2, 3, 1}));
}

TEST(Coo, CompressFoldsDuplicates)
{
    CooMatrix<double> c;
    c.rows = c.cols = 2;
    c.row = {0, 0, 1, 0};
    c.col = {1, 1, 0, 1};
    c.val = {1, 2, 5, 3};
    c.compress();
    ASSERT_EQ(c.nnz(), 2U);
    EXPECT_DOUBLE_EQ(c.val[0], 6.0);  // (0,1): 1+2+3
    EXPECT_DOUBLE_EQ(c.val[1], 5.0);
}

TEST(Coo, ToCsrRequiresRowSorted)
{
    CooMatrix<double> c;
    c.rows = c.cols = 2;
    c.row = {1, 0};
    c.col = {0, 0};
    c.val = {1, 1};
    EXPECT_THROW((void)to_csr(c), PreconditionError);
}

TEST(Coo, ValidateChecksRanges)
{
    CooMatrix<double> c;
    c.rows = c.cols = 2;
    c.row = {5};
    c.col = {0};
    c.val = {1};
    EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(Transpose, DoubleTransposeIsIdentity)
{
    auto a = gen::uniform_random(40, 60, 5, 2);
    a.sort_rows();
    const auto tt = transpose(transpose(a));
    EXPECT_TRUE(a == tt);
}

TEST(Transpose, MatchesDense)
{
    const auto a = gen::uniform_random(12, 9, 4, 3);
    const auto t = transpose(a);
    const auto d = to_dense(a);
    const auto dt = to_dense(t);
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t j = 0; j < a.cols; ++j) { EXPECT_EQ(d.at(i, j), dt.at(j, i)); }
    }
}

TEST(Transpose, RowsComeOutSorted)
{
    const auto t = transpose(gen::uniform_random(100, 100, 8, 4));
    EXPECT_TRUE(t.has_sorted_rows());
}

TEST(Symmetrize, ProducesSymmetricMatrix)
{
    const auto s = symmetrize(gen::uniform_random(80, 80, 5, 5));
    const auto t = transpose(s);
    EXPECT_TRUE(approx_equal(s, t, 1e-14));
}

TEST(Symmetrize, RequiresSquare)
{
    EXPECT_THROW((void)symmetrize(gen::uniform_random(4, 5, 2, 6)), PreconditionError);
}

TEST(Dense, MultiplyMatchesByHand)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    DenseMatrix a{2, 2, {1, 2, 3, 4}};
    DenseMatrix b{2, 2, {5, 6, 7, 8}};
    const auto c = dense_multiply(a, b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Dense, CsrRoundTrip)
{
    auto a = gen::uniform_random(20, 30, 4, 7);
    a.sort_rows();
    const auto back = from_dense<double>(to_dense(a));
    EXPECT_TRUE(approx_equal(a, back, 1e-14));
}

TEST(Equality, DetectsShapeRowColValueMismatches)
{
    const auto a = gen::uniform_random(10, 10, 3, 8);
    EXPECT_FALSE(compare_csr(a, a).has_value());

    auto shape = a;
    shape.cols += 1;
    for (auto& c : shape.col) { (void)c; }
    EXPECT_TRUE(compare_csr(a, shape).has_value());

    auto v = a;
    v.val[0] += 1.0;
    const auto diff = compare_csr(a, v);
    ASSERT_TRUE(diff.has_value());
    EXPECT_NE(diff->find("value mismatch"), std::string::npos);

    auto c = a;
    c.col[0] = (c.col[0] + 1) % c.cols;
    EXPECT_TRUE(compare_csr(a, c).has_value());
}

TEST(Equality, RespectsRelativeTolerance)
{
    CsrMatrix<double> a(1, 1, {0, 1}, {0}, {1.0});
    CsrMatrix<double> b(1, 1, {0, 1}, {0}, {1.0 + 1e-7});
    EXPECT_TRUE(approx_equal(a, b, 1e-5));
    EXPECT_FALSE(approx_equal(a, b, 1e-9));
}

}  // namespace
}  // namespace nsparse
