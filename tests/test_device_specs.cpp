// Device-spec portability tests (paper §VI future work): the grouping
// derivation must adapt to other GPUs' shared-memory/occupancy limits, and
// the algorithm must stay correct on every spec.
#include <gtest/gtest.h>

#include "core/grouping.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

TEST(DeviceSpecs, V100DoublesTheSharedTables)
{
    // 96 KB/block: numeric max table 96K/12 -> pow2 = 8192 (P100: 4096).
    const auto p100 = core::GroupingPolicy::numeric(sim::DeviceSpec::pascal_p100(),
                                                    sizeof(double));
    const auto v100 = core::GroupingPolicy::numeric(sim::DeviceSpec::volta_v100(),
                                                    sizeof(double));
    EXPECT_EQ(v100.max_shared_table, 2 * p100.max_shared_table);
    EXPECT_EQ(v100.max_shared_table, 8192);
    // Same ladder length (it is block-size driven: 1024 halving to 64),
    // but every TB group's table doubles.
    ASSERT_EQ(v100.groups.size(), p100.groups.size());
    for (std::size_t g = 1; g + 1 < v100.groups.size(); ++g) {
        EXPECT_EQ(v100.groups[g].table_size, 2 * p100.groups[g].table_size) << g;
    }
}

TEST(DeviceSpecs, K40SameTablesFewerBlocks)
{
    const auto k40 = core::GroupingPolicy::symbolic(sim::DeviceSpec::kepler_k40());
    EXPECT_EQ(k40.max_shared_table, 8192);  // same 48 KB limit as P100
    // K40 allows only 16 blocks/SM: the TB group ladder stops earlier.
    const auto p100 = core::GroupingPolicy::symbolic(sim::DeviceSpec::pascal_p100());
    EXPECT_LT(k40.groups.size(), p100.groups.size());
    for (const auto& g : k40.groups) { EXPECT_LE(g.tb_per_sm, 16); }
}

class SpecSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpecSweep, HashSpgemmCorrectOnEverySpec)
{
    sim::DeviceSpec spec;
    switch (GetParam()) {
        case 0: spec = sim::DeviceSpec::kepler_k40(); break;
        case 1: spec = sim::DeviceSpec::pascal_p100(); break;
        default: spec = sim::DeviceSpec::volta_v100(); break;
    }
    const auto a = gen::uniform_random(600, 600, 10, 99);
    sim::Device dev(spec);
    const auto out = hash_spgemm<double>(dev, a, a);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(a, a)));
    EXPECT_GT(out.stats.gflops(), 0.0);
}

std::string spec_name(const ::testing::TestParamInfo<int>& param_info)
{
    if (param_info.param == 0) { return "K40"; }
    if (param_info.param == 1) { return "P100"; }
    return "V100";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecSweep, ::testing::Values(0, 1, 2), spec_name);

TEST(DeviceSpecs, FasterDeviceIsFaster)
{
    const auto a = gen::uniform_random(2000, 2000, 12, 7);
    sim::Device k40(sim::DeviceSpec::kepler_k40());
    sim::Device v100(sim::DeviceSpec::volta_v100());
    const auto tk = hash_spgemm<double>(k40, a, a).stats.seconds;
    const auto tv = hash_spgemm<double>(v100, a, a).stats.seconds;
    EXPECT_LT(tv, tk);
}

TEST(DeviceSpecs, ScaledCapacityFactory)
{
    const auto full = sim::DeviceSpec::pascal_p100();
    const auto scaled = sim::DeviceSpec::pascal_p100_scaled(64.0);
    EXPECT_EQ(scaled.memory_capacity, full.memory_capacity / 64);
    EXPECT_EQ(sim::DeviceSpec::pascal_p100_scaled(0.5).memory_capacity, full.memory_capacity);
}

}  // namespace
}  // namespace nsparse
