// Workload-generator tests: structural signatures (degree statistics,
// regularity, tails), determinism, parameter validation.
#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "matgen/rng.hpp"
#include "sparse/stats.hpp"

namespace nsparse::gen {
namespace {

TEST(Pcg32, DeterministicAndSeedSensitive)
{
    Pcg32 a(1);
    Pcg32 b(1);
    Pcg32 c(2);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        const auto x = a.next();
        EXPECT_EQ(x, b.next());
        differs |= (x != c.next());
    }
    EXPECT_TRUE(differs);
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 r(3);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.bounded(17), 17U);
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    EXPECT_EQ(r.bounded(1), 0U);
}

TEST(Pcg32, ParetoWithinTruncation)
{
    Pcg32 r(4);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.pareto(2.0, 500.0, 1.5);
        EXPECT_GE(v, 2.0);
        EXPECT_LE(v, 500.0);
    }
}

TEST(Grid2d, InteriorRowsHaveExactlyFourNeighbours)
{
    const auto m = grid2d(10, 10, /*periodic=*/true, 1);
    EXPECT_EQ(m.rows, 100);
    const auto s = basic_stats(m);
    EXPECT_EQ(s.max_nnz_per_row, 4);
    EXPECT_DOUBLE_EQ(s.nnz_per_row, 4.0);  // Epidemiology signature
}

TEST(Grid2d, NonPeriodicBoundaryRowsSmaller)
{
    const auto m = grid2d(5, 5, /*periodic=*/false, 1);
    EXPECT_EQ(m.row_nnz(0), 2);   // corner
    EXPECT_EQ(m.row_nnz(12), 4);  // centre
}

TEST(Banded, EveryRowExactlyDiagonalsNonzeros)
{
    const auto m = banded(500, 39, 1, 2);
    for (index_t i = 0; i < m.rows; ++i) { ASSERT_EQ(m.row_nnz(i), 39) << i; }  // QCD signature
}

TEST(Banded, RejectsTooManyDiagonals)
{
    EXPECT_THROW((void)banded(10, 11, 1, 1), PreconditionError);
}

TEST(FemLike, BlockStructureAndDegreeRange)
{
    FemParams p;
    p.nodes = 200;
    p.block_size = 3;
    p.avg_blocks = 20;
    p.jitter = 0.2;
    p.bandwidth = 42;
    p.seed = 3;
    const auto m = fem_like(p);
    EXPECT_EQ(m.rows, 600);
    const auto s = basic_stats(m);
    // mean within 25% of the target (dedup + boundary clamping shrink it)
    EXPECT_NEAR(s.nnz_per_row, 60.0, 15.0);
    EXPECT_LE(s.max_nnz_per_row, static_cast<index_t>(3 * (20 * 1.2 + 2) * 1.2));
    // rows of one node block have identical sparsity pattern
    EXPECT_EQ(m.row_nnz(0), m.row_nnz(1));
    EXPECT_EQ(m.row_nnz(0), m.row_nnz(2));
}

TEST(ScaleFree, MeanAndTail)
{
    ScaleFreeParams p;
    p.rows = 20000;
    p.avg_degree = 4.0;
    p.max_degree = 2000;
    p.alpha = 1.4;
    p.seed = 4;
    const auto m = scale_free(p);
    const auto s = basic_stats(m);
    EXPECT_NEAR(s.nnz_per_row, 4.0, 1.0);
    EXPECT_GT(s.max_nnz_per_row, 200);   // heavy tail exists (webbase signature)
    EXPECT_LE(s.max_nnz_per_row, 2000);  // but truncated
}

TEST(ScaleFree, LocalityConcentratesNearDiagonal)
{
    ScaleFreeParams p;
    p.rows = 4000;
    p.avg_degree = 6.0;
    p.max_degree = 100;
    p.locality = 1.0;
    p.seed = 5;
    const auto m = scale_free(p);
    const index_t window = std::max<index_t>(8, p.rows / 64);
    for (index_t i = 0; i < m.rows; ++i) {
        for (const index_t c : m.row_cols(i)) {
            EXPECT_LE(std::abs(c - i), window + 1) << "row " << i;
        }
    }
}

TEST(Rmat, PowerLawDegreeDistribution)
{
    RmatParams p;
    p.scale = 12;
    p.edges_per_vertex = 8.0;
    p.seed = 6;
    const auto m = rmat(p);
    EXPECT_EQ(m.rows, 4096);
    const auto s = basic_stats(m);
    EXPECT_GT(static_cast<double>(s.max_nnz_per_row), 8.0 * s.nnz_per_row);  // skew
    EXPECT_GT(s.nnz, 0);
}

TEST(Rmat, RejectsBadProbabilities)
{
    RmatParams p;
    p.a = 0.6;
    p.b = 0.3;
    p.c = 0.2;  // sums > 1
    EXPECT_THROW((void)rmat(p), PreconditionError);
}

TEST(RandomBanded, DegreeCappedAndBanded)
{
    RandomBandedParams p;
    p.n = 3000;
    p.avg_degree = 19.0;
    p.max_degree = 47;
    p.bandwidth = 100;
    p.seed = 7;
    const auto m = random_banded(p);
    const auto s = basic_stats(m);
    EXPECT_LE(s.max_nnz_per_row, 47);  // cage15 signature
    EXPECT_NEAR(s.nnz_per_row, 19.0, 4.0);
    for (index_t i = 0; i < m.rows; ++i) {
        for (const index_t c : m.row_cols(i)) { EXPECT_LE(std::abs(c - i), 100); }
    }
}

TEST(UniformRandom, DegreeAndDeterminism)
{
    const auto a = uniform_random(100, 200, 10, 8);
    const auto b = uniform_random(100, 200, 10, 8);
    EXPECT_TRUE(a == b);
    for (index_t i = 0; i < a.rows; ++i) { EXPECT_LE(a.row_nnz(i), 10); }
    EXPECT_EQ(a.cols, 200);
    EXPECT_TRUE(a.has_sorted_rows());
}

TEST(UniformRandom, RejectsDegreeAboveColumns)
{
    EXPECT_THROW((void)uniform_random(5, 3, 4, 1), PreconditionError);
}

TEST(Generators, AllProduceValidSortedMatrices)
{
    const auto check = [](const CsrMatrix<double>& m) {
        m.validate();
        EXPECT_TRUE(m.has_sorted_rows());
        for (const double v : m.val) {
            EXPECT_GE(v, 0.5);
            EXPECT_LT(v, 1.5);
        }
    };
    check(grid2d(8, 8, true, 1));
    check(banded(64, 7, 1, 1));
    check(fem_like({.nodes = 30, .block_size = 3, .avg_blocks = 5, .jitter = 0.2,
                    .bandwidth = 10, .seed = 1}));
    check(scale_free({.rows = 100, .avg_degree = 3, .min_degree = 1, .max_degree = 20,
                      .alpha = 2.0, .locality = 0.5, .seed = 1}));
    check(rmat({.scale = 8, .edges_per_vertex = 4, .a = 0.57, .b = 0.19, .c = 0.19, .seed = 1}));
    check(random_banded({.n = 100, .avg_degree = 5, .max_degree = 10, .bandwidth = 20,
                         .seed = 1}));
}

}  // namespace
}  // namespace nsparse::gen
