// Chaos harness for nsparse::Session (ctest label: chaos): sweeps
// allocation FaultPlans, injected row faults, tight deadlines, mid-batch
// cancellation and capacity pressure — alone and composed — and asserts
// the resilience contract after every scenario: completed requests are
// byte-identical to a clean exact run, failed requests carry the right
// structured error, the session's outcome counters stay consistent, and
// the device is always reusable for the next request.
#include <gtest/gtest.h>

#include <thread>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> chaos_matrix() { return gen::uniform_random(200, 200, 7, 13); }

std::size_t unchunked_peak(const CsrMatrix<double>& a)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<double>(dev, a, a).stats.peak_bytes;
}

void expect_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want)
{
    EXPECT_EQ(got.rpt, want.rpt);
    EXPECT_EQ(got.col, want.col);
    EXPECT_EQ(got.val, want.val);
}

/// Outcome counters partition the requests — nothing double- or
/// un-counted, whatever the chaos did.
void expect_consistent(const SessionStats& s)
{
    EXPECT_EQ(s.requests,
              s.completed + s.failed + s.rejected + s.cancelled + s.deadline_exceeded);
    EXPECT_LE(s.recovered, s.completed);
    EXPECT_LE(s.admitted, s.requests);
}

TEST(ChaosSession, FaultPlanByRowFaultsByDeadlineSweep)
{
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);
    const std::size_t peak = unchunked_peak(a);

    for (const std::size_t capacity : {std::size_t{0} /* unlimited */, peak * 3 / 4}) {
        for (const bool row_faults : {false, true}) {
            for (const double sim_budget : {0.0, 1e-9, 1e-3}) {
                for (const std::uint64_t seed : {1ULL, 7ULL}) {
                    SessionConfig cfg;
                    if (capacity != 0) { cfg.device_spec.memory_capacity = capacity; }
                    if (row_faults) {
                        cfg.options.inject_numeric_row_faults = {5, 17, 123};
                    }
                    Session session(std::move(cfg));

                    sim::FaultPlan plan;
                    plan.fail_probability = 0.02;
                    plan.seed = seed;
                    session.device().allocator().set_fault_plan(plan);

                    RequestBudget budget;
                    budget.sim_seconds = sim_budget;
                    const auto res = session.multiply<double>(a, a, budget);
                    if (res.ok()) {
                        expect_identical(res.out.matrix, want);
                    } else {
                        EXPECT_NE(res.outcome, RequestOutcome::kCompleted);
                        EXPECT_FALSE(res.error_message.empty());
                    }
                    expect_consistent(session.stats());

                    // Reusability: chaos off, the same session completes.
                    session.device().allocator().set_fault_plan(sim::FaultPlan{});
                    const auto clean = session.multiply<double>(a, a);
                    ASSERT_TRUE(clean.ok())
                        << "capacity=" << capacity << " row_faults=" << row_faults
                        << " budget=" << sim_budget << " seed=" << seed << ": "
                        << clean.error_message;
                    expect_identical(clean.out.matrix, want);
                    expect_consistent(session.stats());
                }
            }
        }
    }
}

TEST(ChaosSession, SlabFallbackComposesWithPendingRowRetries)
{
    // Satellite contract: the slab rung re-runs a multiply whose rows also
    // fault individually — the group-0 retry ladder runs *inside* each
    // slab attempt while the OOM ladder degrades around it.
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    SessionConfig cfg;
    cfg.device_spec.memory_capacity = unchunked_peak(a) * 3 / 4;
    cfg.admission = AdmissionMode::kAnnotate;  // let the OOM really happen
    cfg.options.inject_numeric_row_faults = {5, 17, 123};
    Session session(std::move(cfg));

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.final_stage, RecoveryStage::kSlab);
    EXPECT_GE(res.out.stats.fallback_slabs, 2);
    EXPECT_GT(res.out.stats.faulted_rows, 0);
    EXPECT_GT(res.out.stats.row_retries, 0);
    expect_identical(res.out.matrix, want);
    EXPECT_EQ(session.stats().recovered, 1U);
}

TEST(ChaosSession, EstimationRepairComposesWithAllocationFaults)
{
    // Satellite contract: estimation-based planning under allocation
    // faults. Whatever path the ladder takes (clean estimated run, exact
    // replan, slabs), the output is byte-identical and the clean-run
    // invariant "one group-0 retry per mispredicted row" holds — no
    // abandoned attempt leaks its tallies.
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    for (const std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
        SessionConfig cfg;
        cfg.options.plan_mode = core::PlanMode::kEstimated;
        Session session(std::move(cfg));

        sim::FaultPlan plan;
        plan.fail_probability = 0.01;
        plan.seed = seed;
        session.device().allocator().set_fault_plan(plan);

        const auto res = session.multiply<double>(a, a);
        if (res.ok()) {
            expect_identical(res.out.matrix, want);
            EXPECT_EQ(res.out.stats.row_retries, res.out.stats.mispredicted_rows) << seed;
        }
        expect_consistent(session.stats());
    }
}

TEST(ChaosSession, MidBatchCancellationIsMonotoneAndRecoverable)
{
    const auto a = gen::uniform_random(120, 120, 5, 7);
    const auto want = reference_spgemm(a, a);

    Session session;
    constexpr std::size_t kProducts = 48;
    const std::vector<const CsrMatrix<double>*> ms(kProducts, &a);

    std::thread canceller([&session] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        session.cancel("chaos");
    });
    const auto out = session.multiply_batch<double>(ms, ms);
    canceller.join();

    ASSERT_EQ(out.items.size(), kProducts);
    // Cancellation is sticky within the batch: once one product is
    // cancelled, every later product is cancelled too.
    bool seen_cancelled = false;
    int cancelled = 0;
    for (std::size_t k = 0; k < kProducts; ++k) {
        const auto& item = out.items[k];
        if (item.outcome == RequestOutcome::kCancelled) {
            seen_cancelled = true;
            ++cancelled;
            EXPECT_THROW(std::rethrow_exception(item.error), OperationCancelled);
        } else {
            EXPECT_FALSE(seen_cancelled) << "completed product after a cancellation at " << k;
            ASSERT_TRUE(item.ok()) << item.error_message;
            expect_identical(item.out.matrix, want);
        }
    }
    EXPECT_EQ(out.stats.cancelled, cancelled);
    expect_consistent(session.stats());

    // The next request re-arms the token: the session keeps working.
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    expect_identical(res.out.matrix, want);
}

TEST(ChaosSession, DeadlineSweepNeverPoisonsTheSession)
{
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    Session session;
    for (const double budget_s : {1e-9, 1e-6, 1e-4, 1e-2, 0.0}) {
        RequestBudget budget;
        budget.sim_seconds = budget_s;
        const auto res = session.multiply<double>(a, a, budget);
        if (res.ok()) {
            expect_identical(res.out.matrix, want);
        } else {
            EXPECT_EQ(res.outcome, RequestOutcome::kDeadline);
        }
    }
    // The unlimited request (budget 0) must have completed.
    EXPECT_GE(session.stats().completed, 1U);
    expect_consistent(session.stats());
}

TEST(ChaosSession, ShardedRescueUnderComposedChaos)
{
    // The sharded scale-out path under chaos: a certain-OOM capacity (B
    // alone cannot fit, so admission re-routes onto row shards whose
    // devices are just as small — every shard recovers through its own
    // ladder) composed with injected row faults and a per-request budget
    // that the shards inherit. Completed requests are byte-identical,
    // expired ones are classified kDeadline, and the counters add up.
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    for (const bool row_faults : {false, true}) {
        for (const double sim_budget : {0.0, 1e-9}) {
            SessionConfig cfg;
            cfg.device_spec.memory_capacity = a.byte_size() / 2;
            if (row_faults) { cfg.options.inject_numeric_row_faults = {5, 17, 123}; }
            Session session(std::move(cfg));

            RequestBudget budget;
            budget.sim_seconds = sim_budget;
            const auto res = session.multiply<double>(a, a, budget);
            if (res.ok()) {
                EXPECT_TRUE(res.sharded);
                EXPECT_EQ(res.final_stage, RecoveryStage::kSharded);
                EXPECT_EQ(res.shard_rollup.failed_shards, 0);
                expect_identical(res.out.matrix, want);
            } else {
                EXPECT_NE(res.outcome, RequestOutcome::kCompleted);
                EXPECT_FALSE(res.error_message.empty());
            }
            EXPECT_EQ(session.stats().sharded_runs, 1U);
            expect_consistent(session.stats());

            // Reusability: the unlimited request on the same session
            // completes sharded, byte-identically.
            const auto clean = session.multiply<double>(a, a);
            ASSERT_TRUE(clean.ok()) << "row_faults=" << row_faults
                                    << " budget=" << sim_budget << ": "
                                    << clean.error_message;
            EXPECT_TRUE(clean.sharded);
            expect_identical(clean.out.matrix, want);
            expect_consistent(session.stats());
        }
    }
}

TEST(ChaosSession, ShardedRunSurvivesLateCancellation)
{
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    SessionConfig cfg;
    cfg.device_spec.memory_capacity = a.byte_size() / 2;  // certain-OOM: sharded
    Session session(std::move(cfg));

    std::thread canceller([&session] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        session.cancel("chaos-shard");
    });
    const auto res = session.multiply<double>(a, a);
    canceller.join();

    // The cancel races the shards: either it landed between ladder stages
    // (kCancelled with the structured error) or the run finished first.
    if (res.ok()) {
        EXPECT_TRUE(res.sharded);
        expect_identical(res.out.matrix, want);
    } else {
        EXPECT_EQ(res.outcome, RequestOutcome::kCancelled);
        EXPECT_THROW(std::rethrow_exception(res.error), OperationCancelled);
    }
    expect_consistent(session.stats());

    // The next request re-arms the token: the session keeps working.
    const auto clean = session.multiply<double>(a, a);
    ASSERT_TRUE(clean.ok()) << clean.error_message;
    EXPECT_TRUE(clean.sharded);
    expect_identical(clean.out.matrix, want);
}

TEST(ChaosSession, TwoTenantQosUnderPressureAndCancellation)
{
    // Two tenants with opposed weights and priorities share one session
    // under capacity pressure, with the operand cache on. The weighted-
    // deficit scheduler may reorder the waves, but: results land in
    // submission slots, the low-priority tenant still completes everything
    // within its (generous) deadline budget, and the per-tenant counters
    // partition the session counters exactly — before and after a batch
    // that a racing cancel tears mid-flight.
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    SessionConfig cfg;
    cfg.device_spec.memory_capacity = unchunked_peak(a) * 3 / 2;
    cfg.cache.enabled = true;
    Session session(std::move(cfg));

    const TenantId heavy = session.register_tenant({"heavy", 3, +5});
    const TenantId light = session.register_tenant({"light", 1, -5});

    const auto tenant_sums_match_session = [&session] {
        TenantStats sum;
        for (std::size_t t = 0; t < session.tenant_count(); ++t) {
            const auto& ts = session.tenant_stats(static_cast<TenantId>(t));
            sum.requests += ts.requests;
            sum.admitted += ts.admitted;
            sum.rejected += ts.rejected;
            sum.completed += ts.completed;
            sum.failed += ts.failed;
            sum.cancelled += ts.cancelled;
            sum.deadline_exceeded += ts.deadline_exceeded;
            sum.recovered += ts.recovered;
            sum.cache_hits += ts.cache_hits;
            sum.cache_misses += ts.cache_misses;
            // Per-tenant partition: every request of the tenant is
            // classified exactly once.
            EXPECT_EQ(ts.requests, ts.completed + ts.failed + ts.rejected +
                                       ts.cancelled + ts.deadline_exceeded)
                << "tenant " << t;
        }
        const auto& s = session.stats();
        EXPECT_EQ(sum.requests, s.requests);
        EXPECT_EQ(sum.admitted, s.admitted);
        EXPECT_EQ(sum.rejected, s.rejected);
        EXPECT_EQ(sum.completed, s.completed);
        EXPECT_EQ(sum.failed, s.failed);
        EXPECT_EQ(sum.cancelled, s.cancelled);
        EXPECT_EQ(sum.deadline_exceeded, s.deadline_exceeded);
        EXPECT_EQ(sum.recovered, s.recovered);
        EXPECT_EQ(sum.cache_hits, s.cache_hits);
        EXPECT_EQ(sum.cache_misses, s.cache_misses);
    };

    // Phase 1: 12 products, 8 heavy / 4 light, interleaved submission.
    const std::vector<const CsrMatrix<double>*> ms(12, &a);
    std::vector<TenantId> ids;
    for (int k = 0; k < 12; ++k) { ids.push_back(k % 3 == 2 ? light : heavy); }
    RequestBudget budget;
    budget.sim_seconds = 1.0;  // generous: nobody should miss a deadline

    const auto out = session.multiply_batch<double>(ms, ms, ids, budget);
    ASSERT_EQ(out.items.size(), 12U);
    for (std::size_t k = 0; k < out.items.size(); ++k) {
        ASSERT_TRUE(out.items[k].ok())
            << "product " << k << " (tenant " << ids[k] << "): "
            << out.items[k].error_message;
        expect_identical(out.items[k].out.matrix, want);
    }
    EXPECT_EQ(session.tenant_stats(heavy).requests, 8U);
    EXPECT_EQ(session.tenant_stats(heavy).completed, 8U);
    EXPECT_EQ(session.tenant_stats(light).requests, 4U);
    // Low weight + low priority means served last in every wave, never
    // starved out of its deadline budget.
    EXPECT_EQ(session.tenant_stats(light).completed, 4U);
    EXPECT_EQ(session.tenant_stats(light).deadline_exceeded, 0U);
    EXPECT_GT(session.tenant_stats(light).sim_seconds, 0.0);
    // Everybody multiplied the same pair: one cold miss, eleven warm hits,
    // partitioned across the tenants.
    const auto& s1 = session.stats();
    EXPECT_EQ(s1.cache_hits + s1.cache_misses, 12U);
    EXPECT_EQ(s1.cache_misses, 1U);
    EXPECT_GT(session.tenant_stats(heavy).cache_hit_rate(), 0.0);
    tenant_sums_match_session();

    // Phase 2: the same mix with a racing mid-batch cancellation. The torn
    // batch must still classify every item and keep the partition exact.
    std::thread canceller([&session] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        session.cancel("chaos-qos");
    });
    const auto out2 = session.multiply_batch<double>(ms, ms, ids, budget);
    canceller.join();

    ASSERT_EQ(out2.items.size(), 12U);
    for (const auto& item : out2.items) {
        if (item.ok()) {
            expect_identical(item.out.matrix, want);
        } else {
            EXPECT_EQ(item.outcome, RequestOutcome::kCancelled);
            EXPECT_THROW(std::rethrow_exception(item.error), OperationCancelled);
        }
    }
    expect_consistent(session.stats());
    tenant_sums_match_session();

    // The next request re-arms the token and the default tenant absorbs it.
    const auto clean = session.multiply<double>(a, a);
    ASSERT_TRUE(clean.ok()) << clean.error_message;
    expect_identical(clean.out.matrix, want);
    EXPECT_EQ(session.tenant_stats(0).requests, 1U);
    tenant_sums_match_session();
}

TEST(ChaosSession, EverythingAtOnce)
{
    // The full stack: tight capacity, estimated planning, injected row
    // faults, probabilistic allocation faults, per-product deadlines and a
    // late cancellation — over a batch. The only promises: per-item
    // outcomes are classified, completed items are byte-identical, the
    // counters add up, and the session survives.
    const auto a = chaos_matrix();
    const auto want = reference_spgemm(a, a);

    SessionConfig cfg;
    cfg.device_spec.memory_capacity = unchunked_peak(a);
    cfg.options.plan_mode = core::PlanMode::kEstimated;
    cfg.options.inject_numeric_row_faults = {2, 9};
    cfg.policy.backoff_base_ms = 0;
    Session session(std::move(cfg));

    sim::FaultPlan plan;
    plan.fail_probability = 0.005;
    plan.seed = 42;
    session.device().allocator().set_fault_plan(plan);

    const std::vector<const CsrMatrix<double>*> ms(8, &a);
    RequestBudget budget;
    budget.sim_seconds = 1.0;  // generous; wall budget unarmed
    std::thread canceller([&session] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        session.cancel("chaos-late");
    });
    const auto out = session.multiply_batch<double>(ms, ms, budget);
    canceller.join();

    ASSERT_EQ(out.items.size(), 8U);
    for (const auto& item : out.items) {
        if (item.ok()) {
            expect_identical(item.out.matrix, want);
        } else {
            EXPECT_FALSE(item.error_message.empty());
            EXPECT_NE(item.outcome, RequestOutcome::kCompleted);
        }
    }
    expect_consistent(session.stats());

    // Chaos off: the same session still multiplies, byte-identically.
    session.device().allocator().set_fault_plan(sim::FaultPlan{});
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    expect_identical(res.out.matrix, want);
}

}  // namespace
}  // namespace nsparse
