// Dataset-suite tests: the synthetic analogues must carry the structural
// signatures of the paper's Table II matrices (scaled), and the suite
// bookkeeping must be consistent.
#include <gtest/gtest.h>

#include <cstdlib>

#include "matgen/dataset_suite.hpp"
#include "sparse/stats.hpp"

namespace nsparse::gen {
namespace {

TEST(DatasetSuite, HasAllFifteenTable2Entries)
{
    const auto& suite = dataset_suite();
    ASSERT_EQ(suite.size(), 15U);
    EXPECT_EQ(suite[0].name, "Protein");
    EXPECT_EQ(suite[11].name, "webbase");
    EXPECT_EQ(suite[14].name, "cit-Patents");

    int high = 0;
    int large = 0;
    for (const auto& s : suite) {
        high += s.high_throughput ? 1 : 0;
        large += s.large_graph ? 1 : 0;
    }
    EXPECT_EQ(high, 8);   // Figure 2(a)
    EXPECT_EQ(large, 3);  // Table III
}

TEST(DatasetSuite, PaperStatsMatchTable2)
{
    const auto p = find_dataset("Protein");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->paper.rows, 36417);
    EXPECT_EQ(p->paper.nnz, 4344765);
    EXPECT_EQ(p->paper.intermediate_products, 555322659);
    EXPECT_EQ(p->paper.nnz_of_square, 19594581);

    const auto c = find_dataset("cage15");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->paper.rows, 5154859);
    EXPECT_EQ(c->paper.intermediate_products, 2078631615);
}

TEST(DatasetSuite, UnknownNameHandling)
{
    EXPECT_FALSE(find_dataset("NoSuchMatrix").has_value());
    EXPECT_THROW((void)make_dataset("NoSuchMatrix"), PreconditionError);
}

TEST(DatasetSuite, GenerationDeterministic)
{
    const auto a = make_dataset("Circuit", 8.0);
    const auto b = make_dataset("Circuit", 8.0);
    EXPECT_TRUE(a == b);
}

TEST(DatasetSuite, EnvScaleMultiplies)
{
    const double base = effective_scale("QCD");
    ::setenv("NSPARSE_SCALE", "2.0", 1);
    EXPECT_DOUBLE_EQ(effective_scale("QCD"), base * 2.0);
    ::unsetenv("NSPARSE_SCALE");
    EXPECT_DOUBLE_EQ(effective_scale("QCD"), base);
}

/// Signature check at an aggressive extra scale (keeps test time small):
/// mean nnz/row within 35% of the paper, skew class preserved.
class DatasetSignature : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetSignature, MatchesPaperRowStatistics)
{
    const std::string name = GetParam();
    const auto spec = find_dataset(name);
    ASSERT_TRUE(spec.has_value());
    const auto m = make_dataset(name, 4.0);  // 4x the default scale
    m.validate();
    const auto s = basic_stats(m);

    EXPECT_GT(s.rows, 16);
    EXPECT_NEAR(s.nnz_per_row, spec->paper.nnz_per_row,
                0.35 * spec->paper.nnz_per_row + 0.5)
        << name;

    // Skew class: ratio of max to mean row degree.
    const double paper_skew =
        static_cast<double>(spec->paper.max_nnz_per_row) / spec->paper.nnz_per_row;
    const double our_skew = static_cast<double>(s.max_nnz_per_row) / s.nnz_per_row;
    if (paper_skew > 100.0) {
        EXPECT_GT(our_skew, 20.0) << name;  // heavy-tail matrices stay heavy
    } else if (paper_skew < 3.0) {
        EXPECT_LT(our_skew, 6.0) << name;  // regular matrices stay regular
    }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSignature,
                         ::testing::Values("Protein", "FEM/Spheres", "FEM/Cantilever",
                                           "FEM/Ship", "Wind Tunnel", "FEM/Harbor", "QCD",
                                           "FEM/Accelerator", "Economics", "Circuit",
                                           "Epidemiology", "webbase", "cage15", "wb-edu",
                                           "cit-Patents"),
                         [](const auto& param_info) {
                             std::string n = param_info.param;
                             for (char& c : n) {
                                 if (c == '/' || c == ' ' || c == '-') { c = '_'; }
                             }
                             return n;
                         });

TEST(DatasetSuite, QcdPerfectlyRegular)
{
    const auto m = make_dataset("QCD", 4.0);
    const auto s = basic_stats(m);
    EXPECT_EQ(s.max_nnz_per_row, 39);
    EXPECT_DOUBLE_EQ(s.nnz_per_row, 39.0);
}

TEST(DatasetSuite, EpidemiologyMaxFour)
{
    const auto m = make_dataset("Epidemiology", 4.0);
    EXPECT_EQ(basic_stats(m).max_nnz_per_row, 4);
}

TEST(DatasetSuite, WebbaseKeepsAbsoluteHubSize)
{
    // The hub-row magnitude is the load-imbalance signature and is kept in
    // absolute terms under scaling.
    const auto m = make_dataset("webbase", 4.0);
    EXPECT_GT(basic_stats(m).max_nnz_per_row, 400);
}

}  // namespace
}  // namespace nsparse::gen
