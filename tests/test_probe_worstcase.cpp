// Worst-case linear probing: hash-adversarial columns that all land on one
// slot of the (c * 107) mod 2^k table. The primitives must charge one
// probe per inspected slot (the cost model's currency), report saturation
// exactly at table capacity, agree between the pow2 bit-and path and the
// true-modulus path, and — end to end — stay correct while costing
// measurably more simulated time than a friendly column pattern.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/hash_table.hpp"
#include "core/spgemm.hpp"
#include "matgen/adversarial.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

TEST(ProbeWorstCase, LinearProbeChainChargesProbes)
{
    // Keys t*32 all hash to slot 0 of a 32-entry table: the t-th insert
    // walks the t occupied slots before claiming the next one.
    constexpr index_t kSize = 32;
    std::vector<index_t> table(to_size(kSize), kEmptySlot);
    for (index_t t = 0; t < kSize; ++t) {
        const auto r = core::hash_insert_key(table, t * kSize);
        EXPECT_TRUE(r.inserted) << "key " << t * kSize;
        EXPECT_FALSE(r.full);
        EXPECT_EQ(r.probes, t + 1) << "key " << t * kSize;
    }
    // Lookups of present keys pay the same chain length.
    for (index_t t = 0; t < kSize; ++t) {
        const auto r = core::hash_insert_key(table, t * kSize);
        EXPECT_TRUE(r.found);
        EXPECT_EQ(r.probes, t + 1);
    }
    // The 33rd distinct key finds no slot: saturation after a full scan.
    const auto full = core::hash_insert_key(table, kSize * kSize);
    EXPECT_TRUE(full.full);
    EXPECT_FALSE(full.inserted);
    EXPECT_EQ(full.probes, kSize);
}

TEST(ProbeWorstCase, NumericAccumulateChargesSameChain)
{
    constexpr index_t kSize = 32;
    std::vector<index_t> keys(to_size(kSize), kEmptySlot);
    std::vector<double> vals(to_size(kSize), 0.0);
    for (index_t t = 0; t < kSize; ++t) {
        const auto r = core::hash_accumulate<double>(keys, vals, t * kSize, 1.0);
        EXPECT_TRUE(r.inserted);
        EXPECT_EQ(r.probes, t + 1);
    }
    // Accumulating into an existing key probes the chain, then atomicAdds.
    const auto again = core::hash_accumulate<double>(keys, vals, 31 * kSize, 2.0);
    EXPECT_TRUE(again.found);
    EXPECT_EQ(again.probes, kSize);
    const auto full = core::hash_accumulate<double>(keys, vals, kSize * kSize, 1.0);
    EXPECT_TRUE(full.full);
    EXPECT_EQ(full.probes, kSize);
}

TEST(ProbeWorstCase, NonPow2ModulusAgrees)
{
    // The cuSPARSE-like baseline probes with a true modulus over a
    // non-power-of-two table. Keys t*30 collide on slot 0 of a 30-entry
    // table exactly like the pow2 chain: same probe counts, same
    // saturation point.
    constexpr index_t kSize = 30;
    std::vector<index_t> table(to_size(kSize), kEmptySlot);
    for (index_t t = 0; t < kSize; ++t) {
        const auto r = core::hash_insert_key(table, t * kSize, /*pow2=*/false);
        EXPECT_TRUE(r.inserted);
        EXPECT_EQ(r.probes, t + 1);
    }
    EXPECT_TRUE(core::hash_insert_key(table, kSize * kSize, false).full);

    // Same key set through both paths counts the same number of distinct
    // columns (the symbolic phase's only functional output).
    const std::vector<index_t> cols = {7, 107, 7, 214, 45, 107, 3, 45, 99};
    std::vector<index_t> p2(64, kEmptySlot);
    std::vector<index_t> np(to_size(kSize), kEmptySlot);
    index_t distinct_p2 = 0;
    index_t distinct_np = 0;
    for (const index_t c : cols) {
        distinct_p2 += core::hash_insert_key(p2, c, true).inserted ? 1 : 0;
        distinct_np += core::hash_insert_key(np, c, false).inserted ? 1 : 0;
    }
    EXPECT_EQ(distinct_p2, distinct_np);
    EXPECT_EQ(distinct_p2, 6);
}

TEST(ProbeWorstCase, ProbeTallyIs64BitAndSurvivesIntOverflow)
{
    // Adversarial worst-case rows composed with group-0 doubling retries
    // accumulate probe totals past the 32-bit range; both the per-operation
    // count and the cumulative tally must be 64-bit.
    static_assert(std::is_same_v<decltype(core::ProbeResult::probes), std::int64_t>,
                  "ProbeResult::probes must be 64-bit");
    static_assert(std::is_same_v<decltype(core::HashTableStats::probes), std::int64_t>,
                  "HashTableStats::probes must be 64-bit");

    core::HashTableStats st;
    core::ProbeResult worst;
    worst.inserted = true;
    worst.probes = std::numeric_limits<std::int32_t>::max();
    for (int k = 0; k < 4; ++k) { st.observe(worst); }
    EXPECT_EQ(st.operations, 4);
    EXPECT_EQ(st.inserts, 4);
    EXPECT_EQ(st.probes,
              4 * static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max()));
    EXPECT_GT(st.probes, static_cast<std::int64_t>(std::numeric_limits<int>::max()));
    EXPECT_DOUBLE_EQ(
        st.chain(), static_cast<double>(std::numeric_limits<std::int32_t>::max()));
}

TEST(ProbeWorstCase, SingleSlotTableIsTheSmallestLegalTable)
{
    // The planner clamps every product-bearing row's table to >= 1 entry
    // (the hash_slot zero-size guard's contract): a 1-slot table must
    // insert its first key, find it again, and saturate on the second
    // distinct key — on both the pow2 and the true-modulus path.
    for (const bool pow2 : {true, false}) {
        std::vector<index_t> t(1, kEmptySlot);
        const auto first = core::hash_insert_key(t, 5, pow2);
        EXPECT_TRUE(first.inserted);
        EXPECT_EQ(first.probes, 1);
        EXPECT_TRUE(core::hash_insert_key(t, 5, pow2).found);
        EXPECT_TRUE(core::hash_insert_key(t, 6, pow2).full);
    }
    std::vector<index_t> keys(1, kEmptySlot);
    std::vector<double> vals(1, 0.0);
    EXPECT_TRUE(core::hash_accumulate<double>(keys, vals, 3, 1.5).inserted);
    EXPECT_TRUE(core::hash_accumulate<double>(keys, vals, 3, 2.5).found);
    EXPECT_DOUBLE_EQ(vals[0], 4.0);
}

#ifndef NDEBUG
TEST(ProbeWorstCaseDeathTest, ZeroSizeTableTripsTheGuard)
{
    // A zero-sized table would bit-and with -1 / divide by zero; the guard
    // makes the library bug loud instead of undefined.
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    EXPECT_DEATH((void)core::hash_slot(3, 0, true), "non-empty table");
}
#endif

TEST(ProbeWorstCase, AdversarialColumnsStayCorrectAndCostMore)
{
    // Two matrices with identical shape and nnz; the adversarial one puts
    // every row's columns in one congruence class mod 128 (maximal chains
    // in every bounded table), the control spreads them out. Both must be
    // exactly correct; the adversarial run must cost more simulated time
    // because every probe is charged to the cost model.
    const auto adversarial = gen::adversarial_case(99, 12);  // hash_collider family
    ASSERT_EQ(adversarial.name.rfind("hash_collider", 0), 0U) << adversarial.name;
    const auto& a = adversarial.matrix;

    // Control: same row degrees, consecutive columns (no collisions).
    CsrMatrix<double> ctl;
    ctl.rows = a.rows;
    ctl.cols = a.cols;
    ctl.rpt = a.rpt;
    ctl.val = a.val;
    ctl.col.resize(a.col.size());
    for (index_t i = 0; i < a.rows; ++i) {
        const auto base = to_size(a.rpt[to_size(i)]);
        const auto deg = to_size(a.rpt[to_size(i) + 1]) - base;
        for (std::size_t k = 0; k < deg; ++k) {
            ctl.col[base + k] = to_index((to_size(i) + k) % to_size(a.cols));
        }
    }
    ctl.validate();

    sim::Device dev_a(sim::DeviceSpec::pascal_p100());
    const auto out_a = hash_spgemm<double>(dev_a, a, a);
    EXPECT_TRUE(approx_equal(out_a.matrix, reference_spgemm(a, a), 1e-10));
    EXPECT_EQ(out_a.stats.faulted_rows, 0);

    sim::Device dev_c(sim::DeviceSpec::pascal_p100());
    const auto out_c = hash_spgemm<double>(dev_c, ctl, ctl);
    EXPECT_TRUE(approx_equal(out_c.matrix, reference_spgemm(ctl, ctl), 1e-10));

    // Normalise per intermediate product: the adversarial pattern pays
    // more cycles for the same amount of useful work.
    const double cost_a = out_a.stats.seconds /
                          static_cast<double>(out_a.stats.intermediate_products);
    const double cost_c = out_c.stats.seconds /
                          static_cast<double>(out_c.stats.intermediate_products);
    EXPECT_GT(cost_a, cost_c);
}

}  // namespace
}  // namespace nsparse
