// Batched SpGEMM test battery (ctest labels: batch, tsan, faults).
//
// Differential: core::spgemm_batch must be byte-identical, product by
// product, to N independent hash_spgemm calls (baseline::batch_reference)
// for mixed-size batches — empty matrices, 1-row matrices, duplicate
// pointers — across executor thread counts, stream settings and
// batch_streams values. Determinism: results AND the stats roll-up are
// bit-identical across thread counts. Edge cases: empty batch, batch of
// one, inner-dimension mismatch naming the offending product, 32-bit nnz
// overflow failing loudly in its own slot while neighbours complete.
// Composition: allocation FaultPlans and per-row kernel-fault injection
// behave exactly as in single-product mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/batch_reference.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_batch.hpp"
#include "core/spgemm_impl.hpp"
#include "matgen/adversarial.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr std::uint64_t kSeed = 20170814;  // nsparse @ ICPP'17

sim::Device make_p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

/// Matrices live in `store` (stable: reserved up front); as/bs point into
/// it, including deliberate duplicate pointers.
struct Batch {
    std::vector<CsrMatrix<double>> store;
    std::vector<const CsrMatrix<double>*> as;
    std::vector<const CsrMatrix<double>*> bs;
};

/// Mixed-size batch: squares, rectangles, an all-zero A and an all-zero B,
/// a 1-row product, identity, an adversarial case, plus a duplicate-pointer
/// repeat of product 0.
Batch make_mixed_batch()
{
    Batch b;
    b.store.reserve(16);
    auto keep = [&b](CsrMatrix<double> m) -> const CsrMatrix<double>* {
        b.store.push_back(std::move(m));
        return &b.store.back();
    };
    const auto* sq = keep(gen::uniform_random(300, 300, 8, kSeed + 1));
    b.as.push_back(sq);  // product 0: square, A == B (same pointer)
    b.bs.push_back(sq);
    b.as.push_back(keep(gen::uniform_random(200, 120, 6, kSeed + 2)));  // product 1: rect
    b.bs.push_back(keep(gen::uniform_random(120, 80, 5, kSeed + 3)));
    b.as.push_back(keep(CsrMatrix<double>::zero(40, 30)));  // product 2: zero A
    b.bs.push_back(keep(gen::uniform_random(30, 20, 4, kSeed + 4)));
    b.as.push_back(keep(gen::uniform_random(50, 25, 3, kSeed + 5)));  // product 3: zero B
    b.bs.push_back(keep(CsrMatrix<double>::zero(25, 10)));
    b.as.push_back(keep(gen::uniform_random(1, 60, 12, kSeed + 6)));  // product 4: 1-row A
    b.bs.push_back(keep(gen::uniform_random(60, 33, 4, kSeed + 7)));
    b.as.push_back(keep(CsrMatrix<double>::identity(64)));  // product 5: identity
    b.bs.push_back(keep(gen::uniform_random(64, 64, 6, kSeed + 8)));
    const auto* adv = keep(gen::adversarial_case(kSeed, 7).matrix);  // product 6
    b.as.push_back(adv);
    b.bs.push_back(adv);
    b.as.push_back(sq);  // product 7: duplicate pointers of product 0
    b.bs.push_back(sq);
    return b;
}

/// A 1xM x MxK product whose single-row intermediate-product count
/// exceeds 2^31 (duplicate A columns are structurally valid CSR): ~1e5
/// copies of column 0 times a B row of 3e4 entries = 3e9 products. Cheap
/// to build and detected by the checked to_index() in kernel (1).
void append_overflow_product(Batch& b)
{
    CsrMatrix<double> a;
    a.rows = 1;
    a.cols = 1;
    a.col.assign(100000, 0);
    a.val.assign(100000, 1.0);
    a.rpt = {0, 100000};
    CsrMatrix<double> bm;
    bm.rows = 1;
    bm.cols = 30000;
    bm.col.resize(30000);
    bm.val.assign(30000, 1.0);
    for (index_t j = 0; j < 30000; ++j) { bm.col[to_size(j)] = j; }
    bm.rpt = {0, 30000};
    b.store.push_back(std::move(a));
    b.as.push_back(&b.store.back());
    b.store.push_back(std::move(bm));
    b.bs.push_back(&b.store.back());
}

void expect_items_match_reference(const core::SpgemmBatchOutput<double>& got,
                                  const baseline::BatchReferenceOutput<double>& ref,
                                  const std::string& what)
{
    ASSERT_EQ(got.items.size(), ref.items.size()) << what;
    for (std::size_t k = 0; k < got.items.size(); ++k) {
        ASSERT_TRUE(got.items[k].ok()) << what << ": product " << k << " failed: "
                                       << got.items[k].error_message;
        ASSERT_TRUE(ref.items[k].ok()) << what << ": reference product " << k << " failed";
        EXPECT_TRUE(got.items[k].out.matrix == ref.items[k].out.matrix)
            << what << ": product " << k << " differs from its single-call result";
        EXPECT_EQ(got.items[k].out.stats.nnz_c, ref.items[k].out.stats.nnz_c)
            << what << ": product " << k;
        EXPECT_EQ(got.items[k].out.stats.intermediate_products,
                  ref.items[k].out.stats.intermediate_products)
            << what << ": product " << k;
    }
}

TEST(SpgemmBatch, EmptyBatchReturnsEmptyResult)
{
    sim::Device dev = make_p100();
    std::vector<const CsrMatrix<double>*> none;
    const auto out = core::spgemm_batch<double>(dev, none, none);
    EXPECT_TRUE(out.items.empty());
    EXPECT_EQ(out.stats.products, 0);
    EXPECT_EQ(out.stats.failed, 0);
    EXPECT_EQ(out.stats.waves, 0);
    EXPECT_EQ(out.stats.gflops(), 0.0);
    EXPECT_TRUE(out.stats.stream_occupancy.empty());
}

TEST(SpgemmBatch, BatchOfOneMatchesSingleCall)
{
    const auto a = gen::uniform_random(500, 400, 7, kSeed + 11);
    const auto b = gen::uniform_random(400, 300, 5, kSeed + 12);
    std::vector<const CsrMatrix<double>*> as{&a};
    std::vector<const CsrMatrix<double>*> bs{&b};

    sim::Device dev = make_p100();
    const auto batched = core::spgemm_batch<double>(dev, as, bs);
    sim::Device single_dev = make_p100();
    const auto single = hash_spgemm<double>(single_dev, a, b);

    ASSERT_EQ(batched.items.size(), 1U);
    ASSERT_TRUE(batched.items[0].ok());
    EXPECT_TRUE(batched.items[0].out.matrix == single.matrix);
    EXPECT_EQ(batched.items[0].out.stats.nnz_c, single.stats.nnz_c);
    EXPECT_EQ(batched.stats.products, 1);
    EXPECT_EQ(batched.stats.waves, 1);
    EXPECT_EQ(batched.stats.total_nnz_c, single.stats.nnz_c);
    EXPECT_EQ(batched.stats.total_intermediate_products, single.stats.intermediate_products);
    EXPECT_GT(batched.stats.makespan_seconds, 0.0);
}

TEST(SpgemmBatch, MixedSizesMatchSinglesAcrossConfigs)
{
    const Batch batch = make_mixed_batch();
    for (const int threads : {1, 2, 8}) {
        for (const bool streams : {true, false}) {
            for (const int batch_streams : {1, 4}) {
                core::Options opt;
                opt.executor_threads = threads;
                opt.use_streams = streams;
                opt.batch_streams = batch_streams;
                const auto ref = baseline::batch_reference<double>(make_p100, batch.as,
                                                                   batch.bs, opt);
                sim::Device dev = make_p100();
                const auto got = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
                expect_items_match_reference(
                    got, ref,
                    "threads=" + std::to_string(threads) +
                        " streams=" + std::to_string(static_cast<int>(streams)) +
                        " batch_streams=" + std::to_string(batch_streams));
                EXPECT_EQ(got.stats.failed, 0);
            }
        }
    }
}

TEST(SpgemmBatch, DeterministicAcrossThreadCountsAndStreams)
{
    const Batch batch = make_mixed_batch();
    for (const bool streams : {true, false}) {
        core::SpgemmBatchOutput<double> base;
        bool have_base = false;
        for (const int threads : {1, 2, 8}) {
            core::Options opt;
            opt.executor_threads = threads;
            opt.use_streams = streams;
            sim::Device dev = make_p100();
            auto got = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
            if (!have_base) {
                base = std::move(got);
                have_base = true;
                continue;
            }
            const std::string what =
                "threads=" + std::to_string(threads) + " vs 1, streams=" +
                std::to_string(static_cast<int>(streams));
            ASSERT_EQ(got.items.size(), base.items.size()) << what;
            for (std::size_t k = 0; k < got.items.size(); ++k) {
                EXPECT_TRUE(got.items[k].out.matrix == base.items[k].out.matrix)
                    << what << ": product " << k;
                // Per-item stats are bit-identical, including the
                // schedule-derived timing (the simulated schedule depends
                // only on issue order, which is fixed).
                EXPECT_EQ(got.items[k].out.stats.seconds, base.items[k].out.stats.seconds)
                    << what << ": product " << k;
                EXPECT_EQ(got.items[k].out.stats.peak_bytes,
                          base.items[k].out.stats.peak_bytes)
                    << what << ": product " << k;
            }
            // Roll-up bit-identical: simulated time, memory, occupancy.
            EXPECT_EQ(got.stats.seconds, base.stats.seconds) << what;
            EXPECT_EQ(got.stats.makespan_seconds, base.stats.makespan_seconds) << what;
            EXPECT_EQ(got.stats.malloc_seconds, base.stats.malloc_seconds) << what;
            EXPECT_EQ(got.stats.peak_bytes, base.stats.peak_bytes) << what;
            EXPECT_EQ(got.stats.total_nnz_c, base.stats.total_nnz_c) << what;
            EXPECT_EQ(got.stats.total_intermediate_products,
                      base.stats.total_intermediate_products)
                << what;
            EXPECT_EQ(got.stats.scratch_hits, base.stats.scratch_hits) << what;
            EXPECT_EQ(got.stats.scratch_misses, base.stats.scratch_misses) << what;
            ASSERT_EQ(got.stats.stream_occupancy.size(), base.stats.stream_occupancy.size())
                << what;
            for (std::size_t s = 0; s < got.stats.stream_occupancy.size(); ++s) {
                EXPECT_EQ(got.stats.stream_occupancy[s].stream_id,
                          base.stats.stream_occupancy[s].stream_id)
                    << what;
                EXPECT_EQ(got.stats.stream_occupancy[s].busy_seconds,
                          base.stats.stream_occupancy[s].busy_seconds)
                    << what;
            }
        }
    }
}

TEST(SpgemmBatch, InnerDimMismatchNamesTheProduct)
{
    const auto ok_a = gen::uniform_random(50, 40, 4, kSeed + 21);
    const auto ok_b = gen::uniform_random(40, 30, 4, kSeed + 22);
    const auto bad_b = gen::uniform_random(41, 30, 4, kSeed + 23);  // 40 != 41
    std::vector<const CsrMatrix<double>*> as{&ok_a, &ok_a, &ok_a, &ok_a};
    std::vector<const CsrMatrix<double>*> bs{&ok_b, &ok_b, &bad_b, &ok_b};
    sim::Device dev = make_p100();
    try {
        (void)core::spgemm_batch<double>(dev, as, bs);
        FAIL() << "mismatched product must throw up front";
    } catch (const PreconditionError& e) {
        EXPECT_EQ(e.invariant(), "inner_dims_agree");
        EXPECT_NE(std::string(e.what()).find("batch product 2"), std::string::npos)
            << e.what();
    }
    // Nothing ran: the batch fails as a whole before any kernel.
    EXPECT_EQ(dev.kernels_launched(), 0U);
    EXPECT_FALSE(dev.batch_capture_active());
}

TEST(SpgemmBatch, NullPointerNamesTheProduct)
{
    const auto a = gen::uniform_random(20, 20, 3, kSeed + 24);
    std::vector<const CsrMatrix<double>*> as{&a, nullptr};
    std::vector<const CsrMatrix<double>*> bs{&a, &a};
    sim::Device dev = make_p100();
    try {
        (void)core::spgemm_batch<double>(dev, as, bs);
        FAIL() << "null pointer must throw up front";
    } catch (const PreconditionError& e) {
        EXPECT_EQ(e.invariant(), "non_null_inputs");
        EXPECT_NE(std::string(e.what()).find("batch product 1"), std::string::npos)
            << e.what();
    }
}

TEST(SpgemmBatch, MismatchedListLengthsThrow)
{
    const auto a = gen::uniform_random(20, 20, 3, kSeed + 25);
    std::vector<const CsrMatrix<double>*> as{&a, &a};
    std::vector<const CsrMatrix<double>*> bs{&a};
    sim::Device dev = make_p100();
    EXPECT_THROW((void)core::spgemm_batch<double>(dev, as, bs), PreconditionError);
}

TEST(SpgemmBatch, NnzOverflowFailsLoudlyWithoutCorruptingNeighbours)
{
    // Product 1's single row generates 3e9 > 2^31 intermediate products;
    // the checked index conversion must surface in that product's slot
    // while products 0 and 2 complete byte-identical to their single runs.
    Batch batch;
    batch.store.reserve(8);
    auto keep = [&batch](CsrMatrix<double> m) -> const CsrMatrix<double>* {
        batch.store.push_back(std::move(m));
        return &batch.store.back();
    };
    const auto* n0 = keep(gen::uniform_random(150, 150, 6, kSeed + 31));
    batch.as.push_back(n0);
    batch.bs.push_back(n0);
    append_overflow_product(batch);
    const auto* n2 = keep(gen::uniform_random(90, 70, 5, kSeed + 32));
    batch.as.push_back(n2);
    batch.bs.push_back(keep(gen::uniform_random(70, 40, 4, kSeed + 33)));

    for (const int threads : {1, 4}) {
        core::Options opt;
        opt.executor_threads = threads;
        sim::Device dev = make_p100();
        const auto out = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
        ASSERT_EQ(out.items.size(), 3U);
        EXPECT_FALSE(out.items[1].ok()) << "threads=" << threads;
        EXPECT_EQ(out.stats.failed, 1);
        EXPECT_NE(out.items[1].error_message.find("batch product 1"), std::string::npos)
            << out.items[1].error_message;
        EXPECT_NE(out.items[1].error_message.find("index overflow"), std::string::npos)
            << out.items[1].error_message;
        EXPECT_THROW(std::rethrow_exception(out.items[1].error), PreconditionError);

        // Neighbours unharmed: byte-identical to their single-call runs.
        sim::Device d0 = make_p100();
        EXPECT_TRUE(out.items[0].ok());
        EXPECT_TRUE(out.items[0].out.matrix ==
                    hash_spgemm<double>(d0, *batch.as[0], *batch.bs[0], opt).matrix);
        sim::Device d2 = make_p100();
        EXPECT_TRUE(out.items[2].ok());
        EXPECT_TRUE(out.items[2].out.matrix ==
                    hash_spgemm<double>(d2, *batch.as[2], *batch.bs[2], opt).matrix);
    }
}

TEST(SpgemmBatch, ScanRowPointersOverflowThrowsDirectly)
{
    // Unit test of kernel (4)'s guard, reachable now that the pipeline is
    // in core::detail: three rows of 1.5e9 nnz each overflow int32 at the
    // second row even though every individual row fits.
    sim::Device dev = make_p100();
    sim::DeviceBuffer<index_t> row_nnz(dev.allocator(), 3);
    row_nnz.fill(1'500'000'000);
    std::vector<index_t> rpt;
    try {
        core::detail::scan_row_pointers(dev, row_nnz, rpt);
        FAIL() << "scan must reject a 32-bit overflowing nnz(C)";
    } catch (const IndexOverflow& e) {
        // Typed overflow: the row that tipped the total and the running
        // total itself are machine-readable (the shard planner keys on
        // them), and the message points at the 64-bit escalation.
        EXPECT_EQ(e.row(), 1);
        EXPECT_EQ(e.running_total(), 3'000'000'000LL);
        EXPECT_NE(std::string(e.what()).find("row-pointer index range"), std::string::npos)
            << e.what();
    }
    // The wide_t instantiation carries the same counts without overflow —
    // the OpSparse hybrid's 64-bit row-pointer path.
    std::vector<wide_t> wide_rpt;
    core::detail::scan_row_pointers(dev, row_nnz, wide_rpt);
    EXPECT_EQ(wide_rpt.back(), 4'500'000'000LL);
}

TEST(SpgemmBatch, FailFastRethrowsLowestFailingProduct)
{
    // Products 1 (nnz overflow -> PreconditionError) and 3 (upload too big
    // for a shrunken device, slab fallback off -> DeviceOutOfMemory) both
    // fail; batch_fail_fast must surface product 1's error (lowest index).
    Batch batch;
    batch.store.reserve(8);
    auto keep = [&batch](CsrMatrix<double> m) -> const CsrMatrix<double>* {
        batch.store.push_back(std::move(m));
        return &batch.store.back();
    };
    const auto* small = keep(gen::uniform_random(60, 60, 4, kSeed + 41));
    batch.as.push_back(small);
    batch.bs.push_back(small);
    append_overflow_product(batch);  // product 1
    batch.as.push_back(small);       // product 2
    batch.bs.push_back(small);
    const auto* big = keep(gen::uniform_random(50000, 50000, 16, kSeed + 42));  // product 3
    batch.as.push_back(big);
    batch.bs.push_back(big);

    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = std::size_t{8} * 1024 * 1024;  // product 3 cannot even upload
    core::Options opt;
    opt.slab_fallback = false;

    {
        // Contained mode: both failures recorded, distinct types, correct slots.
        sim::Device dev(spec);
        const auto out = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
        EXPECT_EQ(out.stats.failed, 2);
        EXPECT_TRUE(out.items[0].ok());
        EXPECT_TRUE(out.items[2].ok());
        EXPECT_THROW(std::rethrow_exception(out.items[1].error), PreconditionError);
        EXPECT_THROW(std::rethrow_exception(out.items[3].error), DeviceOutOfMemory);
        EXPECT_NE(out.items[3].error_message.find("batch product 3"), std::string::npos);
    }
    {
        core::Options ff = opt;
        ff.batch_fail_fast = true;
        sim::Device dev(spec);
        EXPECT_THROW((void)core::spgemm_batch<double>(dev, batch.as, batch.bs, ff),
                     PreconditionError);  // product 1's type, not product 3's OOM
        EXPECT_FALSE(dev.batch_capture_active());  // device left usable
    }
}

TEST(SpgemmBatch, ComposedWithAllocationFaultPlan)
{
    // Random allocation failures during a batch: every product either
    // completes correctly or carries DeviceOutOfMemory in its slot (with
    // slab fallback disabled to keep failures observable); never a
    // KernelFault, and the device leaks nothing once the batch returns.
    const Batch batch = make_mixed_batch();
    std::vector<CsrMatrix<double>> expected;
    expected.reserve(batch.as.size());
    for (std::size_t k = 0; k < batch.as.size(); ++k) {
        expected.push_back(reference_spgemm(*batch.as[k], *batch.bs[k]));
    }
    for (int round = 0; round < 6; ++round) {
        sim::Device dev = make_p100();
        sim::FaultPlan plan;
        plan.fail_probability = 0.05;
        plan.seed = kSeed + static_cast<std::uint64_t>(round);
        dev.allocator().set_fault_plan(plan);
        const std::size_t live_before = dev.allocator().live_bytes();
        core::Options opt;
        opt.slab_fallback = false;
        const auto out = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
        for (std::size_t k = 0; k < out.items.size(); ++k) {
            if (out.items[k].ok()) {
                EXPECT_TRUE(approx_equal(out.items[k].out.matrix, expected[k], 1e-10))
                    << "round " << round << " product " << k;
            } else {
                try {
                    std::rethrow_exception(out.items[k].error);
                } catch (const DeviceOutOfMemory&) {
                    // acceptable: the injected failure surfaced, contained
                } catch (const KernelFault& f) {
                    ADD_FAILURE() << "round " << round << " product " << k
                                  << " raised KernelFault under allocation faults: "
                                  << f.what();
                }
            }
        }
        EXPECT_EQ(dev.allocator().live_bytes(), live_before)
            << "round " << round << " leaked";
    }
}

TEST(SpgemmBatch, ComposedWithRowFaultInjectionMatchesSingles)
{
    // Kernel-level row faults injected into every product of the batch:
    // the per-row retry/host-recourse containment must leave the batched
    // outputs byte-identical to single calls with the same injection.
    const Batch batch = make_mixed_batch();
    core::Options opt;
    opt.inject_symbolic_row_faults = {0, 17};
    opt.inject_numeric_row_faults = {1, 29};
    const auto ref = baseline::batch_reference<double>(make_p100, batch.as, batch.bs, opt);
    sim::Device dev = make_p100();
    const auto got = core::spgemm_batch<double>(dev, batch.as, batch.bs, opt);
    expect_items_match_reference(got, ref, "row-fault injection");
    EXPECT_GT(got.stats.faulted_rows, 0);
    int ref_faulted = 0;
    for (const auto& item : ref.items) { ref_faulted += item.out.stats.faulted_rows; }
    EXPECT_EQ(got.stats.faulted_rows, ref_faulted);
}

TEST(SpgemmBatch, ScratchReuseTogglesWithoutChangingResults)
{
    // Same-shape products make the pool hit on every re-take; reuse must
    // change only malloc time, never results.
    std::vector<CsrMatrix<double>> store;
    store.reserve(6);
    std::vector<const CsrMatrix<double>*> as;
    std::vector<const CsrMatrix<double>*> bs;
    for (int k = 0; k < 6; ++k) {
        store.push_back(gen::uniform_random(400, 400, 8, kSeed + 50 + static_cast<unsigned>(k)));
    }
    for (int k = 0; k < 6; ++k) {
        as.push_back(&store[to_size(k)]);
        bs.push_back(&store[to_size(k)]);
    }

    core::Options with_pool;
    with_pool.batch_scratch_reuse = true;
    core::Options no_pool;
    no_pool.batch_scratch_reuse = false;

    sim::Device dev1 = make_p100();
    const auto pooled = core::spgemm_batch<double>(dev1, as, bs, with_pool);
    sim::Device dev2 = make_p100();
    const auto fresh = core::spgemm_batch<double>(dev2, as, bs, no_pool);

    ASSERT_EQ(pooled.items.size(), fresh.items.size());
    for (std::size_t k = 0; k < pooled.items.size(); ++k) {
        EXPECT_TRUE(pooled.items[k].out.matrix == fresh.items[k].out.matrix)
            << "product " << k;
    }
    EXPECT_GT(pooled.stats.scratch_hits, 0U);
    EXPECT_EQ(fresh.stats.scratch_hits, 0U);
    EXPECT_EQ(fresh.stats.scratch_misses, 0U);
    // Pool hits skip simulated cudaMalloc calls, so the batch's malloc
    // bucket can only shrink.
    EXPECT_LT(pooled.stats.malloc_seconds, fresh.stats.malloc_seconds);
}

TEST(SpgemmBatch, WaveOverlapBeatsSequentialSchedule)
{
    // The tentpole's point: with batch_streams > 1 independent products
    // share the device inside one window, so the summed window makespan
    // must undercut the one-product-per-wave schedule of the same batch.
    std::vector<CsrMatrix<double>> store;
    store.reserve(8);
    std::vector<const CsrMatrix<double>*> as;
    std::vector<const CsrMatrix<double>*> bs;
    for (int k = 0; k < 8; ++k) {
        store.push_back(gen::uniform_random(256, 256, 6, kSeed + 70 + static_cast<unsigned>(k)));
    }
    for (int k = 0; k < 8; ++k) {
        as.push_back(&store[to_size(k)]);
        bs.push_back(&store[to_size(k)]);
    }

    core::Options wide;
    wide.batch_streams = 4;
    core::Options narrow;
    narrow.batch_streams = 1;

    sim::Device dev1 = make_p100();
    const auto overlapped = core::spgemm_batch<double>(dev1, as, bs, wide);
    sim::Device dev2 = make_p100();
    const auto sequential = core::spgemm_batch<double>(dev2, as, bs, narrow);

    ASSERT_EQ(overlapped.stats.failed, 0);
    ASSERT_EQ(sequential.stats.failed, 0);
    EXPECT_EQ(overlapped.stats.waves, 2);
    EXPECT_EQ(sequential.stats.waves, 8);
    for (std::size_t k = 0; k < as.size(); ++k) {
        EXPECT_TRUE(overlapped.items[k].out.matrix == sequential.items[k].out.matrix)
            << "product " << k;
    }
    EXPECT_LT(overlapped.stats.makespan_seconds, sequential.stats.makespan_seconds);
    // More than one stream did real work in the overlapped run.
    int busy_streams = 0;
    for (const auto& s : overlapped.stats.stream_occupancy) {
        if (s.busy_seconds > 0.0) { ++busy_streams; }
    }
    EXPECT_GT(busy_streams, 1);
}

TEST(SpgemmBatch, RepeatedBatchesOnOneDeviceStayIdentical)
{
    // Flush/capture state must fully reset between batches: running the
    // same batch twice on one device gives bit-identical results and
    // per-run stats (reset_measurement at entry).
    const Batch batch = make_mixed_batch();
    sim::Device dev = make_p100();
    const auto first = core::spgemm_batch<double>(dev, batch.as, batch.bs);
    const auto second = core::spgemm_batch<double>(dev, batch.as, batch.bs);
    ASSERT_EQ(first.items.size(), second.items.size());
    for (std::size_t k = 0; k < first.items.size(); ++k) {
        EXPECT_TRUE(first.items[k].out.matrix == second.items[k].out.matrix)
            << "product " << k;
    }
    EXPECT_EQ(first.stats.makespan_seconds, second.stats.makespan_seconds);
    EXPECT_EQ(first.stats.total_nnz_c, second.stats.total_nnz_c);
}

}  // namespace
}  // namespace nsparse
