// Graph-algorithm substrate: triangle counting, multi-source BFS and
// Markov clustering, all routed through the simulated-device SpGEMM.
#include <gtest/gtest.h>

#include "baselines/esc.hpp"
#include "graph/algorithms.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/transpose.hpp"

namespace nsparse::graph {
namespace {

sim::Device p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

/// Symmetric 0/1 adjacency from an edge list.
CsrMatrix<double> from_edges(index_t n, const std::vector<std::pair<index_t, index_t>>& edges)
{
    CooMatrix<double> coo;
    coo.rows = coo.cols = n;
    for (const auto& [u, v] : edges) {
        coo.row.push_back(u);
        coo.col.push_back(v);
        coo.val.push_back(1.0);
        coo.row.push_back(v);
        coo.col.push_back(u);
        coo.val.push_back(1.0);
    }
    coo.compress();
    auto m = to_csr(coo);
    for (auto& v : m.val) { v = 1.0; }  // duplicate edges -> still 0/1
    return m;
}

/// O(n^3) reference triangle counter.
wide_t triangles_reference(const CsrMatrix<double>& a)
{
    wide_t t = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        for (const index_t j : a.row_cols(i)) {
            if (j <= i) { continue; }
            for (const index_t k : a.row_cols(j)) {
                if (k <= j) { continue; }
                for (const index_t l : a.row_cols(i)) {
                    if (l == k) { ++t; }
                }
            }
        }
    }
    return t;
}

TEST(TriangleCount, KnownSmallGraphs)
{
    sim::Device dev = p100();
    // triangle
    EXPECT_EQ(triangle_count(dev, from_edges(3, {{0, 1}, {1, 2}, {2, 0}})), 1);
    // square: none
    EXPECT_EQ(triangle_count(dev, from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})), 0);
    // K4: 4 triangles
    EXPECT_EQ(triangle_count(dev,
                             from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})),
              4);
}

TEST(TriangleCount, MatchesReferenceOnRandomGraphs)
{
    for (const std::uint64_t seed : {1U, 2U, 3U}) {
        const auto a = symmetrize(gen::uniform_random(120, 120, 4, seed));
        auto adj = a;
        for (auto& v : adj.val) { v = 1.0; }
        sim::Device dev = p100();
        EXPECT_EQ(triangle_count(dev, adj), triangles_reference(adj)) << seed;
    }
}

TEST(TriangleCount, SelfLoopsIgnored)
{
    sim::Device dev = p100();
    auto g = from_edges(3, {{0, 1}, {1, 2}, {2, 0}, {0, 0}});
    EXPECT_EQ(triangle_count(dev, g), 1);
}

TEST(TriangleCount, WorksWithBaselineEngine)
{
    sim::Device dev = p100();
    const auto g = from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
    const auto esc = [](sim::Device& d, const CsrMatrix<double>& x,
                        const CsrMatrix<double>& y) {
        return baseline::esc_spgemm<double>(d, x, y);
    };
    EXPECT_EQ(triangle_count(dev, g, esc), 4);
}

TEST(Bfs, PathGraphDistances)
{
    // 0-1-2-3-4 path
    const auto g = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    sim::Device dev = p100();
    const std::vector<index_t> sources{0, 4};
    const auto r = multi_source_bfs(dev, g, std::span<const index_t>(sources));
    EXPECT_EQ(r.distances[0], (std::vector<index_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(r.distances[1], (std::vector<index_t>{4, 3, 2, 1, 0}));
    EXPECT_EQ(r.levels, 4);
    EXPECT_GT(r.spgemm_products, 0);
}

TEST(Bfs, DisconnectedComponentUnreachable)
{
    const auto g = from_edges(5, {{0, 1}, {3, 4}});
    sim::Device dev = p100();
    const std::vector<index_t> sources{0};
    const auto r = multi_source_bfs(dev, g, std::span<const index_t>(sources));
    EXPECT_EQ(r.distances[0][0], 0);
    EXPECT_EQ(r.distances[0][1], 1);
    EXPECT_EQ(r.distances[0][2], -1);
    EXPECT_EQ(r.distances[0][3], -1);
}

TEST(Bfs, MatchesSequentialBfsOnRandomGraph)
{
    const auto a = symmetrize(gen::uniform_random(300, 300, 3, 7));
    sim::Device dev = p100();
    const std::vector<index_t> sources{0, 17, 250};
    const auto r = multi_source_bfs(dev, a, std::span<const index_t>(sources));

    for (std::size_t s = 0; s < sources.size(); ++s) {
        // sequential BFS
        std::vector<index_t> dist(300, -1);
        std::vector<index_t> q{sources[s]};
        dist[to_size(sources[s])] = 0;
        for (std::size_t head = 0; head < q.size(); ++head) {
            const index_t u = q[head];
            for (const index_t v : a.row_cols(u)) {
                if (dist[to_size(v)] < 0) {
                    dist[to_size(v)] = dist[to_size(u)] + 1;
                    q.push_back(v);
                }
            }
        }
        EXPECT_EQ(r.distances[s], dist) << "source " << sources[s];
    }
}

TEST(Bfs, SourceOutOfRangeThrows)
{
    const auto g = from_edges(3, {{0, 1}});
    sim::Device dev = p100();
    const std::vector<index_t> sources{5};
    EXPECT_THROW((void)multi_source_bfs(dev, g, std::span<const index_t>(sources)),
                 PreconditionError);
}

TEST(Mcl, SeparatesTwoCliques)
{
    // two K4 cliques joined by one weak edge
    std::vector<std::pair<index_t, index_t>> edges;
    for (index_t i = 0; i < 4; ++i) {
        for (index_t j = i + 1; j < 4; ++j) {
            edges.emplace_back(i, j);
            edges.emplace_back(i + 4, j + 4);
        }
    }
    edges.emplace_back(3, 4);  // bridge
    const auto g = from_edges(8, edges);
    sim::Device dev = p100();
    const auto r = markov_clustering(dev, g);
    EXPECT_GE(r.clusters, 2);
    // all of clique 1 in one cluster, all of clique 2 in another
    for (index_t v = 1; v < 4; ++v) { EXPECT_EQ(r.cluster_of[to_size(v)], r.cluster_of[0]); }
    for (index_t v = 5; v < 8; ++v) { EXPECT_EQ(r.cluster_of[to_size(v)], r.cluster_of[4]); }
    EXPECT_NE(r.cluster_of[0], r.cluster_of[4]);
}

TEST(Mcl, ConvergesAndAssignsEveryVertex)
{
    gen::ScaleFreeParams p;
    p.rows = 200;
    p.avg_degree = 4.0;
    p.max_degree = 20;
    p.locality = 0.8;
    p.seed = 5;
    const auto g = symmetrize(gen::scale_free(p));
    sim::Device dev = p100();
    const auto r = markov_clustering(dev, g);
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.clusters, 1);
    EXPECT_LE(r.clusters, 200);
    for (const index_t c : r.cluster_of) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, r.clusters);
    }
}

}  // namespace
}  // namespace nsparse::graph
