// Estimation-based symbolic planning (Options::plan_mode, ctest label
// `plan`): every mode must produce output BYTE-identical to exact planning
// on every suite — the planned capacities only decide where a row is
// computed, never what it contains — with mispredictions absorbed by the
// group-0 retry safety net (clean-run invariant: one retry per mispredicted
// row, zero host recourse). Also covers the NnzEstimateModel unit
// invariants, the sample-rate / confidence knobs, stats accounting, thread
// determinism, and the batched path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/estimator.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_batch.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

sim::Device p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

core::Options mode_opt(core::PlanMode m)
{
    core::Options opt;
    opt.plan_mode = m;
    return opt;
}

/// The suites every byte-identity test sweeps: uniform (the estimator's
/// best case), an R-MAT power law, a hub-heavy scale-free graph and a
/// banded stencil-like matrix.
std::vector<std::pair<const char*, CsrMatrix<double>>> suites()
{
    std::vector<std::pair<const char*, CsrMatrix<double>>> s;
    s.emplace_back("uniform", gen::uniform_random(1500, 1500, 12, 3));
    gen::RmatParams rp;
    rp.scale = 10;
    rp.edges_per_vertex = 8.0;
    rp.seed = 5;
    s.emplace_back("rmat", gen::rmat(rp));
    gen::ScaleFreeParams sp;
    sp.rows = 2000;
    sp.avg_degree = 5.0;
    sp.max_degree = 600;
    sp.seed = 7;
    s.emplace_back("scale_free", gen::scale_free(sp));
    s.emplace_back("grid", gen::grid2d(40, 40, true, 2));
    return s;
}

TEST(EstimatorModel, PlanNeverExceedsCapacityAndNeverVanishes)
{
    // Fit a model from a synthetic sample, then sweep product counts: a
    // product-bearing row must always get a real table (>= 1 entry — the
    // hash_slot zero-size guard's contract) and the grouping/table nnz must
    // never exceed the storage capacity (a planned table that fits its keys
    // can then only overflow *storage*, which the retry absorbs).
    const std::vector<index_t> rows = {0, 1, 2, 3, 4, 5};
    const std::vector<index_t> products = {4, 16, 70, 300, 1200, 6000};
    const std::vector<index_t> nnz = {3, 11, 40, 150, 500, 2000};
    core::HashTableStats probes;
    probes.operations = 100;
    probes.probes = 130;
    auto m = core::fit_nnz_model(rows, products, nnz, 1e5, probes);
    m.shared_nnz_limit = 4096;

    constexpr index_t kCols = 5000;
    for (index_t p = 1; p <= 20000; p = p * 2 + 1) {
        const index_t cap = m.capacity(p, kCols);
        const index_t plan = m.plan_nnz(p, kCols);
        EXPECT_GE(cap, 1) << "products " << p;
        EXPECT_GE(plan, 1) << "products " << p;
        EXPECT_LE(plan, cap) << "products " << p;
        EXPECT_LE(cap, std::min(p, kCols)) << "products " << p;
        EXPECT_LE(m.predict(p), static_cast<double>(p)) << "products " << p;
        EXPECT_GE(m.confidence(p), 0.0) << "products " << p;
        EXPECT_LE(m.confidence(p), 1.0) << "products " << p;
    }
    // Product-free rows are planned empty.
    EXPECT_EQ(m.capacity(0, kCols), 0);
    EXPECT_EQ(m.plan_nnz(0, kCols), 0);
    EXPECT_DOUBLE_EQ(m.predict(0), 0.0);
    // A near-empty estimate still reserves one slot: an estimated-empty row
    // that turns out non-empty must have a table to accumulate into.
    core::NnzEstimateModel tiny;
    tiny.shared_nnz_limit = 4096;
    tiny.effective_cols = 2.0;
    EXPECT_GE(tiny.capacity(1, kCols), 1);
    EXPECT_GE(tiny.plan_nnz(1, kCols), 1);
}

TEST(EstimatorModel, ChooseSampleRowsIsDeterministicSortedUnique)
{
    std::vector<index_t> products(400, 0);
    for (std::size_t i = 0; i < products.size(); i += 3) {
        products[i] = to_index(5 + (i % 50));
    }
    products[33] = 900;  // hub (within the span cap of this distribution? see below)
    const auto picked = core::choose_sample_rows(products, 0.05);
    const auto again = core::choose_sample_rows(products, 0.05);
    EXPECT_EQ(picked, again);
    EXPECT_FALSE(picked.empty());
    EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
    EXPECT_TRUE(std::adjacent_find(picked.begin(), picked.end()) == picked.end());
    for (const index_t i : picked) {
        EXPECT_GT(products[to_size(i)], 0) << "sampled a product-free row " << i;
    }
    // The hub row is below the span cap (16x mean, floor 2048) here, so it
    // must be pinned into the sample.
    EXPECT_TRUE(std::find(picked.begin(), picked.end(), 33) != picked.end());

    // No product-bearing rows -> nothing to sample.
    const std::vector<index_t> empty(64, 0);
    EXPECT_TRUE(core::choose_sample_rows(empty, 0.05).empty());
}

TEST(EstimatorPlanning, ByteIdenticalAcrossModesAndSuites)
{
    for (const auto& [name, a] : suites()) {
        SCOPED_TRACE(name);
        sim::Device dx = p100();
        const auto exact = hash_spgemm<double>(dx, a, a, mode_opt(core::PlanMode::kExact));
        ASSERT_TRUE(approx_equal(exact.matrix, reference_spgemm(a, a), 1e-10));

        for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
            sim::Device dev = p100();
            const auto out = hash_spgemm<double>(dev, a, a, mode_opt(mode));
            // operator== is exact: same structure, bit-identical values.
            EXPECT_TRUE(out.matrix == exact.matrix)
                << (mode == core::PlanMode::kEstimated ? "estimated" : "hybrid")
                << " output differs from exact planning";
            EXPECT_EQ(out.stats.nnz_c, exact.stats.nnz_c);
        }
    }
}

TEST(EstimatorPlanning, ByteIdenticalFloat)
{
    const auto d = gen::uniform_random(900, 900, 10, 11);
    CsrMatrix<float> a;
    a.rows = d.rows;
    a.cols = d.cols;
    a.rpt = d.rpt;
    a.col = d.col;
    a.val.assign(d.val.begin(), d.val.end());

    sim::Device dx = p100();
    const auto exact = hash_spgemm<float>(dx, a, a, mode_opt(core::PlanMode::kExact));
    for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
        sim::Device dev = p100();
        EXPECT_TRUE(hash_spgemm<float>(dev, a, a, mode_opt(mode)).matrix == exact.matrix);
    }
}

TEST(EstimatorPlanning, CleanRunRetryInvariant)
{
    // Without injected faults, the group-0 rewrite is entered exactly once
    // per mispredicted row and never falls through to the host: the safety
    // net absorbs every planning error on the device.
    for (const auto& [name, a] : suites()) {
        SCOPED_TRACE(name);
        for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
            sim::Device dev = p100();
            const auto s = hash_spgemm<double>(dev, a, a, mode_opt(mode)).stats;
            EXPECT_EQ(s.row_retries, s.mispredicted_rows)
                << "clean-run invariant broken (mode "
                << (mode == core::PlanMode::kEstimated ? "estimated" : "hybrid") << ")";
            EXPECT_EQ(s.host_fallback_rows, 0);
            // faulted_rows may be positive here: a saturated *planned*
            // table is a contained fault by the PR 3 taxonomy even though
            // estimation caused it — mispredicted_rows is the planning
            // metric.
            EXPECT_GE(s.mispredicted_rows, 0);
            EXPECT_LE(s.mispredicted_rows, s.estimated_rows);
        }
    }
}

TEST(EstimatorPlanning, StarvedSampleStillExactThroughRetries)
{
    // A starved sample (one-row floor) on a hub-heavy matrix maximises
    // mispredictions; the result must still be byte-identical and every
    // misprediction must be recovered by exactly one device-side retry.
    gen::ScaleFreeParams sp;
    sp.rows = 2500;
    sp.avg_degree = 5.0;
    sp.max_degree = 900;
    sp.seed = 13;
    const auto a = gen::scale_free(sp);

    sim::Device dx = p100();
    const auto exact = hash_spgemm<double>(dx, a, a, mode_opt(core::PlanMode::kExact));

    core::Options opt = mode_opt(core::PlanMode::kEstimated);
    opt.estimate_sample_rate = 1e-6;  // clamps to the 8-sample floor
    sim::Device dev = p100();
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == exact.matrix);
    EXPECT_EQ(out.stats.row_retries, out.stats.mispredicted_rows);
    EXPECT_EQ(out.stats.host_fallback_rows, 0);
}

TEST(EstimatorPlanning, ConfidenceKnobExtremes)
{
    gen::RmatParams rp;
    rp.scale = 10;
    rp.edges_per_vertex = 8.0;
    rp.seed = 21;
    const auto a = gen::rmat(rp);

    sim::Device de = p100();
    const auto est = hash_spgemm<double>(de, a, a, mode_opt(core::PlanMode::kEstimated));

    // Confidence 0 trusts every prediction: hybrid degenerates to the
    // estimated plan, bit-identical cycles included.
    core::Options trust = mode_opt(core::PlanMode::kHybrid);
    trust.estimate_confidence = 0.0;
    sim::Device dt = p100();
    const auto trusted = hash_spgemm<double>(dt, a, a, trust);
    EXPECT_TRUE(trusted.matrix == est.matrix);
    EXPECT_EQ(trusted.stats.estimated_rows, est.stats.estimated_rows);
    EXPECT_DOUBLE_EQ(trusted.stats.seconds, est.stats.seconds);

    // Confidence 1 trusts nothing: every product-bearing row is re-counted
    // exactly, so no row is planned from the model and none can mispredict.
    core::Options paranoid = mode_opt(core::PlanMode::kHybrid);
    paranoid.estimate_confidence = 1.0;
    sim::Device dp = p100();
    const auto counted = hash_spgemm<double>(dp, a, a, paranoid);
    EXPECT_TRUE(counted.matrix == est.matrix);
    EXPECT_EQ(counted.stats.estimated_rows, 0);
    EXPECT_EQ(counted.stats.mispredicted_rows, 0);
    EXPECT_GT(counted.stats.count_seconds, 0.0);  // the shrunken pass ran
}

TEST(EstimatorPlanning, SampleRateShrinksEstimatedRows)
{
    const auto a = gen::uniform_random(2000, 2000, 10, 17);
    int est_lo = 0;
    int est_hi = 0;
    for (const double rate : {0.01, 0.5}) {
        core::Options opt = mode_opt(core::PlanMode::kEstimated);
        opt.estimate_sample_rate = rate;
        sim::Device dev = p100();
        const auto s = hash_spgemm<double>(dev, a, a, opt).stats;
        (rate < 0.1 ? est_lo : est_hi) = s.estimated_rows;
    }
    EXPECT_GT(est_lo, 0);
    EXPECT_LT(est_hi, est_lo);  // sampling half the rows leaves fewer estimated
}

TEST(EstimatorPlanning, StatsAccounting)
{
    const auto a = gen::uniform_random(1200, 1200, 12, 19);

    sim::Device dx = p100();
    const auto exact = hash_spgemm<double>(dx, a, a, mode_opt(core::PlanMode::kExact)).stats;
    EXPECT_DOUBLE_EQ(exact.estimate_seconds, 0.0);
    EXPECT_EQ(exact.estimated_rows, 0);
    EXPECT_EQ(exact.mispredicted_rows, 0);
    EXPECT_DOUBLE_EQ(exact.symbolic_cycles_saved, 0.0);

    sim::Device de = p100();
    const auto est = hash_spgemm<double>(de, a, a, mode_opt(core::PlanMode::kEstimated)).stats;
    EXPECT_GT(est.estimate_seconds, 0.0);
    EXPECT_GT(est.estimated_rows, 0);
    EXPECT_GT(est.symbolic_cycles_saved, 0.0);
    EXPECT_DOUBLE_EQ(est.count_seconds, 0.0);  // no exact symbolic pass ran
    // All five phases partition the simulated total.
    EXPECT_NEAR(est.setup_seconds + est.count_seconds + est.estimate_seconds +
                    est.calc_seconds + est.malloc_seconds,
                est.seconds, 1e-12);
}

TEST(EstimatorPlanning, DeterministicAcrossExecutorThreads)
{
    gen::RmatParams rp;
    rp.scale = 10;
    rp.edges_per_vertex = 6.0;
    rp.seed = 23;
    const auto a = gen::rmat(rp);

    core::Options one = mode_opt(core::PlanMode::kEstimated);
    one.executor_threads = 1;
    sim::Device d1 = p100();
    const auto r1 = hash_spgemm<double>(d1, a, a, one);

    core::Options many = mode_opt(core::PlanMode::kEstimated);
    many.executor_threads = 8;
    sim::Device d8 = p100();
    const auto r8 = hash_spgemm<double>(d8, a, a, many);

    EXPECT_TRUE(r1.matrix == r8.matrix);
    EXPECT_DOUBLE_EQ(r1.stats.seconds, r8.stats.seconds);
    EXPECT_EQ(r1.stats.mispredicted_rows, r8.stats.mispredicted_rows);
    EXPECT_EQ(r1.stats.estimated_rows, r8.stats.estimated_rows);
}

TEST(EstimatorPlanning, BatchedEstimatedMatchesSinglesAndRollsUp)
{
    std::vector<CsrMatrix<double>> store;
    store.push_back(gen::uniform_random(500, 500, 8, 29));
    gen::RmatParams rp;
    rp.scale = 9;
    rp.edges_per_vertex = 6.0;
    rp.seed = 31;
    store.push_back(gen::rmat(rp));
    store.push_back(gen::grid2d(25, 25, true, 4));
    store.push_back(CsrMatrix<double>::zero(40, 40));
    std::vector<const CsrMatrix<double>*> ptrs;
    for (const auto& m : store) { ptrs.push_back(&m); }

    core::Options opt = mode_opt(core::PlanMode::kEstimated);
    sim::Device dev = p100();
    const auto batched = core::spgemm_batch<double>(dev, ptrs, ptrs, opt);
    ASSERT_EQ(batched.stats.failed, 0);

    int estimated_sum = 0;
    int mispredicted_sum = 0;
    for (std::size_t k = 0; k < ptrs.size(); ++k) {
        sim::Device sd = p100();
        const auto single = hash_spgemm<double>(sd, *ptrs[k], *ptrs[k], opt);
        EXPECT_TRUE(batched.items[k].out.matrix == single.matrix)
            << "batched estimated product " << k << " differs from its single call";
        estimated_sum += batched.items[k].out.stats.estimated_rows;
        mispredicted_sum += batched.items[k].out.stats.mispredicted_rows;
    }
    EXPECT_GT(estimated_sum, 0);
    EXPECT_EQ(batched.stats.estimated_rows, estimated_sum);
    EXPECT_EQ(batched.stats.mispredicted_rows, mispredicted_sum);
}

TEST(EstimatorPlanning, ComposedWithNumericFaultInjection)
{
    // Injected numeric row faults on top of estimation: containment (not
    // the mispredict accounting) owns the injected rows, so row_retries may
    // exceed mispredicted_rows, but the output must stay byte-identical.
    gen::ScaleFreeParams sp;
    sp.rows = 1200;
    sp.avg_degree = 5.0;
    sp.max_degree = 300;
    sp.seed = 37;
    const auto a = gen::scale_free(sp);

    sim::Device dx = p100();
    const auto exact = hash_spgemm<double>(dx, a, a, mode_opt(core::PlanMode::kExact));

    core::Options opt = mode_opt(core::PlanMode::kEstimated);
    opt.inject_numeric_row_faults = {0, 7, a.rows / 2, a.rows - 1};
    sim::Device dev = p100();
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == exact.matrix);
    EXPECT_GE(out.stats.row_retries, out.stats.mispredicted_rows);
    EXPECT_GT(out.stats.row_retries, 0);  // the injected rows at least
}

}  // namespace
}  // namespace nsparse
