// The memory estimator must bracket the measured device peak tightly —
// it is the "will it fit?" answer the paper's memory-saving claim enables.
#include <gtest/gtest.h>

#include "core/memory_estimator.hpp"
#include "core/spgemm.hpp"
#include "matgen/dataset_suite.hpp"
#include "matgen/generators.hpp"

namespace nsparse::core {
namespace {

template <ValueType T>
void expect_tight(const CsrMatrix<T>& a, double slack = 0.05)
{
    const auto est = estimate_hash_spgemm_memory<T>(a, a);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<T>(dev, a, a);
    const auto actual = out.stats.peak_bytes;
    EXPECT_GE(static_cast<double>(est.peak) * (1.0 + slack), static_cast<double>(actual))
        << "estimate " << est.peak << " vs actual " << actual;
    EXPECT_LE(static_cast<double>(est.peak), static_cast<double>(actual) * (1.0 + slack))
        << "estimate " << est.peak << " vs actual " << actual;
}

TEST(MemoryEstimator, UniformRandomDouble) { expect_tight(gen::uniform_random(800, 800, 10, 1)); }

TEST(MemoryEstimator, UniformRandomFloat)
{
    const auto a = gen::uniform_random(800, 800, 10, 1);
    CsrMatrix<float> f;
    f.rows = a.rows;
    f.cols = a.cols;
    f.rpt = a.rpt;
    f.col = a.col;
    f.val.assign(a.val.begin(), a.val.end());
    expect_tight(f);
}

TEST(MemoryEstimator, GridStencil) { expect_tight(gen::grid2d(60, 60, true, 2)); }

TEST(MemoryEstimator, PowerLawWithGlobalRows)
{
    gen::ScaleFreeParams p;
    p.rows = 4000;
    p.avg_degree = 4.0;
    p.max_degree = 1200;  // hub rows push outputs into the global groups
    p.alpha = 1.4;
    p.seed = 3;
    expect_tight(gen::scale_free(p));
}

TEST(MemoryEstimator, DatasetAnalogues)
{
    for (const auto* name : {"QCD", "Circuit", "Economics"}) {
        SCOPED_TRACE(name);
        expect_tight(gen::make_dataset(name, 16.0));
    }
}

TEST(MemoryEstimator, ComponentsAddUp)
{
    const auto a = gen::uniform_random(500, 500, 8, 4);
    const auto e = estimate_hash_spgemm_memory<double>(a, a);
    EXPECT_GT(e.inputs, 0U);
    EXPECT_GT(e.output, 0U);
    EXPECT_GT(e.bookkeeping, 0U);
    EXPECT_GE(e.peak, e.inputs + e.output);
}

TEST(MemoryEstimator, PredictsOomCorrectly)
{
    // A device sized just below the estimate must OOM (with the row-slab
    // fallback disabled; enabled, it degrades instead); just above must not.
    const auto a = gen::uniform_random(600, 600, 12, 5);
    const auto e = estimate_hash_spgemm_memory<double>(a, a);
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = static_cast<std::size_t>(static_cast<double>(e.peak) * 1.06);
        sim::Device dev(spec);
        EXPECT_NO_THROW((void)hash_spgemm<double>(dev, a, a));
    }
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = static_cast<std::size_t>(static_cast<double>(e.peak) * 0.80);
        sim::Device dev(spec);
        Options opt;
        opt.slab_fallback = false;
        EXPECT_THROW((void)hash_spgemm<double>(dev, a, a, opt), DeviceOutOfMemory);
    }
}

TEST(MemoryEstimator, PlanRowSlabs)
{
    const auto a = gen::uniform_random(600, 600, 12, 5);
    const auto e = estimate_hash_spgemm_memory<double>(a, a);
    // Ample budget: no slabbing needed.
    EXPECT_EQ(plan_row_slabs<double>(a, a, e.peak * 2), 1);
    // Half the scaling budget: at least two slabs.
    const std::size_t resident = a.byte_size();
    EXPECT_GE(plan_row_slabs<double>(a, a, resident + (e.peak - resident) / 2), 2);
    // Budget below B itself: slabbing cannot help.
    EXPECT_EQ(plan_row_slabs<double>(a, a, resident / 2), 0);
    // Slab count never exceeds the row count.
    EXPECT_LE(plan_row_slabs<double>(a, a, resident + 1), a.rows);
}

TEST(MemoryEstimator, SlabPlanNeverCountsTrailingEmptySlabs)
{
    // Regression for the zero-row-slab bug: a ceil split of R rows into k
    // slabs fills only ceil(R / ceil(R/k)) of them. The old plan reported
    // the raw k (R=6, k=4: 2-row slabs, the 4th slab empty) — the shard
    // planner builds on this count and must never emit an empty shard.
    MemoryEstimate e;
    e.peak = 1350;     // scaling footprint of 350 beyond the resident 1000
    e.max_row = 0;
    const std::size_t resident = 1000;
    // per-slab budget 100 -> raw k = ceil(350/100) = 4, but 6 rows split
    // into ceil(6/4)=2-row slabs fill only 3 slabs.
    EXPECT_EQ(plan_row_slabs_from_estimate(e, resident, 6, resident + 100), 3);

    // The fixed point holds across row/budget combinations: the returned
    // count k* satisfies ceil(R / ceil(R/k*)) == k* (every slab non-empty).
    for (const index_t rows : {1, 2, 5, 6, 7, 64, 1000}) {
        for (const std::size_t budget_extra : {40U, 100U, 127U, 350U, 1000U}) {
            const index_t k =
                plan_row_slabs_from_estimate(e, resident, rows, resident + budget_extra);
            ASSERT_GE(k, 1);
            ASSERT_LE(k, rows);
            const index_t slab_rows = (rows + k - 1) / k;
            EXPECT_EQ((rows + slab_rows - 1) / slab_rows, k)
                << "rows=" << rows << " budget_extra=" << budget_extra
                << ": trailing empty slab in the plan";
        }
    }
}

TEST(MemoryEstimator, MaxRowTrackedForSkewedMatrices)
{
    // A hub row's footprint (its output share plus its group-0 table
    // arenas) must be reported: mean-based slab sizing alone would assign
    // it a slab budgeted for the average row.
    gen::ScaleFreeParams p;
    p.rows = 3000;
    p.avg_degree = 4.0;
    p.max_degree = 1500;
    p.alpha = 1.3;
    p.seed = 17;
    const auto a = gen::scale_free(p);
    const auto e = estimate_hash_spgemm_memory<double>(a, a);
    const std::size_t scaling = e.peak - a.byte_size();
    const std::size_t mean_row = scaling / to_size(a.rows);
    EXPECT_GT(e.max_row, 10 * mean_row)
        << "hub row footprint should dwarf the mean on this skew";
    EXPECT_LT(e.max_row, e.peak);
}

TEST(MemoryEstimator, SlabPlanBudgetsTheHubRowNotJustTheMean)
{
    // Regression for the mean-based sizing bug: pick a budget that fits
    // mean-share slabs but not mean-share + hub. A plan ignoring max_row
    // returns too few slabs and the run OOMs through its bounded halving
    // retries; the fixed plan reserves the hub's footprint up front, so the
    // skewed multiply completes WITHOUT any slab-size halvings.
    gen::ScaleFreeParams p;
    p.rows = 3000;
    p.avg_degree = 4.0;
    p.max_degree = 1500;
    p.alpha = 1.3;
    p.seed = 17;
    const auto a = gen::scale_free(p);
    const auto e = estimate_hash_spgemm_memory<double>(a, a);
    const std::size_t resident = a.byte_size();
    const std::size_t scaling = e.peak - resident;

    // The mean-only plan for this budget would be ceil(scaling / usable)
    // with usable = budget - resident; the fixed plan subtracts max_row
    // first. Reverting the max_row term collapses k back to the mean-only
    // count and this assertion fails.
    const std::size_t budget = resident + e.max_row + scaling / 16;
    const index_t k = plan_row_slabs<double>(a, a, budget);
    const std::size_t mean_only_k =
        (scaling + (budget - resident) - 1) / (budget - resident);
    EXPECT_GT(to_size(k), mean_only_k)
        << "plan must reserve the hub row's footprint on top of the mean";

    // When the budget cannot even cover the hub row's footprint beyond B,
    // the plan degrades to single-row slabs rather than undercounting.
    EXPECT_EQ(plan_row_slabs<double>(a, a, resident + e.max_row / 2), a.rows);

    // End to end: a device capped at that budget still completes with
    // bit-identical output. The plan's doc allows bounded halving retries
    // for residual per-slab optimism (heavy tails can stack several large
    // rows into one slab); "bounded" here means at most one halving, where
    // an unbudgeted hub costs the full retry ladder.
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = budget;
    sim::Device dev(spec);
    const auto out = hash_spgemm<double>(dev, a, a);
    EXPECT_GE(out.stats.fallback_slabs, 2);
    EXPECT_LE(out.stats.fallback_retries, 1)
        << "slab plan should be at most one halving away once the hub is budgeted";
    sim::Device full(sim::DeviceSpec::pascal_p100());
    EXPECT_TRUE(out.matrix == hash_spgemm<double>(full, a, a).matrix);
}

}  // namespace
}  // namespace nsparse::core
