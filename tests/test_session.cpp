// nsparse::Session — the resilience front end. Admission control decides
// before any kernel runs, the recovery ladder (planned → exact replan →
// slabs → host recourse) absorbs faults with byte-identical output, the
// circuit breaker short-circuits repeated identical faults, and budgets
// stop requests cooperatively while keeping the device reusable.
#include <gtest/gtest.h>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> pressure_matrix() { return gen::uniform_random(400, 400, 8, 3); }

/// Peak bytes of the clean unchunked multiply, and its exact result.
struct CleanRun {
    CsrMatrix<double> matrix;
    std::size_t peak = 0;
};

CleanRun clean_run(const CsrMatrix<double>& a)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    auto out = hash_spgemm<double>(dev, a, a);
    return {std::move(out.matrix), out.stats.peak_bytes};
}

SessionConfig config_with_capacity(std::size_t bytes)
{
    SessionConfig cfg;
    cfg.device_spec.memory_capacity = bytes;
    return cfg;
}

void expect_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want)
{
    EXPECT_EQ(got.rpt, want.rpt);
    EXPECT_EQ(got.col, want.col);
    EXPECT_EQ(got.val, want.val);
}

TEST(Session, CleanMultiplyMatchesDirectEntryPoint)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    Session session;
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(res.final_stage, RecoveryStage::kPlanned);
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_EQ(res.out.stats.nnz_c, res.out.matrix.nnz());
    EXPECT_EQ(res.out.stats.replans, 0);
    EXPECT_EQ(res.out.stats.host_recourse, 0);

    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kAdmit));
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kSuccess));
    EXPECT_FALSE(res.log.contains(RecoveryEvent::Kind::kEscalate));

    EXPECT_EQ(session.stats().requests, 1U);
    EXPECT_EQ(session.stats().admitted, 1U);
    EXPECT_EQ(session.stats().completed, 1U);
    EXPECT_EQ(session.stats().recovered, 0U);
}

TEST(Session, AdmissionRejectsWhenBAloneCannotFit)
{
    const auto a = pressure_matrix();
    // Sharded admission off: this test locks the pre-sharding rejection
    // path (the sharded rescue of the same request is locked by
    // Session.CertainOomIsAdmittedSharded).
    auto cfg = config_with_capacity(a.byte_size() / 2);
    cfg.shard_devices = 0;
    Session session(cfg);

    const auto res = session.multiply<double>(a, a);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.outcome, RequestOutcome::kRejected);
    EXPECT_EQ(res.final_stage, RecoveryStage::kAdmission);
    EXPECT_FALSE(res.admission.admitted);
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kReject));
    try {
        std::rethrow_exception(res.error);
        FAIL() << "expected AdmissionRejected";
    } catch (const AdmissionRejected& e) {
        EXPECT_GE(e.required_bytes(), e.available_bytes());
        EXPECT_GE(e.deepest_slab_level(), 1);
    }
    EXPECT_EQ(session.stats().rejected, 1U);
    EXPECT_EQ(session.stats().completed, 0U);
    // Rejection is synchronous: nothing ran, nothing leaked.
    EXPECT_EQ(session.device().allocator().live_bytes(), 0U);
}

TEST(Session, CertainOomIsAdmittedSharded)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    // The very request AdmissionRejectsWhenBAloneCannotFit locks as a
    // rejection completes once sharded admission (the default) is on: the
    // certain-OOM verdict re-routes it onto the multi-device sharded path
    // instead of refusing it.
    auto cfg = config_with_capacity(a.byte_size() / 2);
    ASSERT_GT(cfg.shard_devices, 0);  // sharded admission is the default
    Session session(cfg);

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(res.final_stage, RecoveryStage::kSharded);
    EXPECT_TRUE(res.sharded);
    EXPECT_TRUE(res.admission.admitted);
    EXPECT_GE(res.admission.planned_shards, cfg.shard_devices);
    EXPECT_FALSE(res.escalated_64bit);
    expect_identical(res.out.matrix, clean.matrix);

    EXPECT_GE(res.shard_rollup.shards, res.admission.planned_shards);
    EXPECT_EQ(res.shard_rollup.failed_shards, 0);
    ASSERT_EQ(res.shard_stats.size(), static_cast<std::size_t>(res.shard_rollup.shards));
    for (const auto& st : res.shard_stats) {
        EXPECT_TRUE(st.ok()) << "shard " << st.shard << ": " << st.error_message;
    }

    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kAdmit));
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kSuccess));
    EXPECT_FALSE(res.log.contains(RecoveryEvent::Kind::kReject));
    EXPECT_EQ(session.stats().sharded_runs, 1U);
    EXPECT_EQ(session.stats().completed, 1U);
    EXPECT_EQ(session.stats().rejected, 0U);
    // The session device never ran the request: the shards executed on
    // fresh devices of their own.
    EXPECT_EQ(session.device().allocator().live_bytes(), 0U);
}

TEST(Session, ShardedAdmissionDisabledRestoresRejection)
{
    const auto a = pressure_matrix();
    auto cfg = config_with_capacity(a.byte_size() / 2);
    cfg.shard_devices = 0;
    Session session(cfg);

    const auto res = session.multiply<double>(a, a);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.outcome, RequestOutcome::kRejected);
    EXPECT_FALSE(res.sharded);
    EXPECT_EQ(res.admission.planned_shards, 0);
    EXPECT_EQ(session.stats().sharded_runs, 0U);
}

TEST(Session, AdmitDryRunAnnotatesPlannedDegradation)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    Session session(config_with_capacity(clean.peak * 3 / 4));
    const AdmissionDecision d = session.admit(a, a);
    EXPECT_TRUE(d.admitted);
    EXPECT_GT(d.predicted_peak_bytes, d.available_bytes);
    EXPECT_GE(d.planned_slab_level, 2);

    // Under kEnforce the request starts at the planned slab level instead
    // of burning cycles into the doomed unchunked attempt — and nothing
    // faults, so the multiply is a clean (non-recovered) completion.
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(res.final_stage, RecoveryStage::kSlab);
    EXPECT_GE(res.out.stats.fallback_slabs, d.planned_slab_level);
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kAnnotate));
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().recovered, 0U);
}

TEST(Session, AnnotateModePredictsButDoesNotChangeExecution)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    SessionConfig cfg = config_with_capacity(clean.peak * 3 / 4);
    cfg.admission = AdmissionMode::kAnnotate;
    Session session(std::move(cfg));

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    // The unchunked attempt ran, OOMed, and the ladder recovered via slabs.
    EXPECT_GE(res.admission.planned_slab_level, 2);
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kEscalate));
    EXPECT_EQ(res.final_stage, RecoveryStage::kSlab);
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().recovered, 1U);
    EXPECT_EQ(session.stats().slab_fallbacks, 1U);
}

TEST(Session, ExactReplanRecoversEstimatedPlanOom)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    SessionConfig cfg;
    cfg.options.plan_mode = core::PlanMode::kEstimated;
    Session session(std::move(cfg));

    // A one-shot allocation fault kills the estimated attempt; the ladder
    // replans with exact symbolic counting (the injected index is consumed,
    // so the replan runs clean) instead of degrading to slabs.
    sim::FaultPlan plan;
    plan.fail_at_alloc = 2;
    session.device().allocator().set_fault_plan(plan);

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(res.final_stage, RecoveryStage::kExactReplan);
    EXPECT_EQ(res.out.stats.replans, 1);
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kEscalate));
    EXPECT_EQ(session.stats().replans, 1U);
    EXPECT_EQ(session.stats().recovered, 1U);
    // The abandoned estimated attempt must not leak its tallies into the
    // exact rerun's stats.
    EXPECT_EQ(res.out.stats.estimated_rows, 0);
    EXPECT_EQ(res.out.stats.mispredicted_rows, res.out.stats.row_retries);
}

TEST(Session, ExactPlanOomEscalatesToSlabs)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    Session session;
    sim::FaultPlan plan;
    plan.fail_at_alloc = 2;
    session.device().allocator().set_fault_plan(plan);

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    // Exact plans have nothing to replan — the ladder goes straight to
    // slabs (which run clean: the injected index was consumed).
    EXPECT_EQ(res.final_stage, RecoveryStage::kSlab);
    EXPECT_EQ(res.out.stats.replans, 0);
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().slab_fallbacks, 1U);
    EXPECT_EQ(session.stats().recovered, 1U);
}

TEST(Session, HostRecourseCompletesWhenSlabsBottomOut)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    // B fits with a sliver to spare, so admission cannot prove
    // infeasibility — but no slab of A's rows ever fits. The direct entry
    // point throws here (test_slab_fallback); the session completes on the
    // host, byte-identically.
    Session session(config_with_capacity(a.byte_size() + 256));
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(res.final_stage, RecoveryStage::kHostRecourse);
    EXPECT_EQ(res.out.stats.host_recourse, 1);
    EXPECT_EQ(res.out.stats.host_fallback_rows, static_cast<int>(a.rows));
    expect_identical(res.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().host_recourses, 1U);
    EXPECT_EQ(session.stats().recovered, 1U);

    // The device survived the whole failed ladder: a second request works.
    const auto res2 = session.multiply<double>(a, a);
    ASSERT_TRUE(res2.ok()) << res2.error_message;
    expect_identical(res2.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().completed, 2U);
}

TEST(Session, PolicyCanDisableEveryFallback)
{
    const auto a = pressure_matrix();
    SessionConfig cfg = config_with_capacity(clean_run(a).peak * 3 / 4);
    cfg.admission = AdmissionMode::kOff;  // let the unchunked attempt OOM
    cfg.policy.slab_fallback = false;
    cfg.policy.host_recourse = false;
    Session session(std::move(cfg));

    const auto res = session.multiply<double>(a, a);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.outcome, RequestOutcome::kFailed);
    EXPECT_THROW(std::rethrow_exception(res.error), DeviceOutOfMemory);
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kFailure));
    EXPECT_EQ(session.stats().failed, 1U);

    // Failure cleanup restores a reusable device within the same session.
    const auto small = gen::uniform_random(60, 60, 4, 11);
    const auto res2 = session.multiply<double>(small, small);
    ASSERT_TRUE(res2.ok()) << res2.error_message;
    const auto want = reference_spgemm(small, small);
    expect_identical(res2.out.matrix, want);
}

TEST(Session, SimDeadlineSurfacesDeadlineExceeded)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    Session session;
    RequestBudget budget;
    budget.sim_seconds = 1e-9;  // trips at the first kernel boundary
    const auto res = session.multiply<double>(a, a, budget);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.outcome, RequestOutcome::kDeadline);
    try {
        std::rethrow_exception(res.error);
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded& e) {
        EXPECT_FALSE(e.wall_clock());
        EXPECT_GE(e.elapsed_seconds(), 0.0);
    }
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kDeadline));
    EXPECT_EQ(session.stats().deadline_exceeded, 1U);
    EXPECT_EQ(session.device().allocator().live_bytes(), 0U);

    // Budgets are per request: the next unbudgeted request completes.
    const auto res2 = session.multiply<double>(a, a);
    ASSERT_TRUE(res2.ok()) << res2.error_message;
    expect_identical(res2.out.matrix, clean.matrix);
}

TEST(Session, GenerousBudgetDoesNotInterfere)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);
    Session session;
    RequestBudget budget;
    budget.sim_seconds = 1e6;
    budget.wall_ms = 600'000;
    const auto res = session.multiply<double>(a, a, budget);
    ASSERT_TRUE(res.ok()) << res.error_message;
    expect_identical(res.out.matrix, clean.matrix);
}

TEST(Session, BreakerOpensJumpsAndClosesOnCleanProbe)
{
    const auto a = pressure_matrix();
    const auto clean = clean_run(a);

    SessionConfig cfg;
    cfg.policy.breaker_threshold = 3;
    cfg.policy.breaker_probe_interval = 2;
    Session session(std::move(cfg));
    auto& alloc = session.device().allocator();

    // Three identical oom@planned faults, each recovered at the slab rung.
    for (int i = 0; i < 3; ++i) {
        sim::FaultPlan plan;
        plan.fail_at_alloc = 2;
        alloc.set_fault_plan(plan);
        const auto res = session.multiply<double>(a, a);
        ASSERT_TRUE(res.ok()) << res.error_message;
        EXPECT_EQ(res.final_stage, RecoveryStage::kSlab);
    }
    EXPECT_TRUE(session.breaker().open());
    EXPECT_EQ(session.stats().breaker_opens, 1U);
    EXPECT_EQ(session.breaker().known_good_stage(), RecoveryStage::kSlab);

    // Fault source fixed — the breaker's memory is what matters now.
    alloc.set_fault_plan(sim::FaultPlan{});

    // Request 4: the open breaker jumps straight to the known-good slab
    // level; no fault, no escalation, still byte-identical.
    const auto jumped = session.multiply<double>(a, a);
    ASSERT_TRUE(jumped.ok()) << jumped.error_message;
    EXPECT_TRUE(jumped.log.contains(RecoveryEvent::Kind::kBreakerJump));
    EXPECT_FALSE(jumped.log.contains(RecoveryEvent::Kind::kEscalate));
    EXPECT_EQ(jumped.final_stage, RecoveryStage::kSlab);
    EXPECT_GE(jumped.out.stats.fallback_slabs, 2);
    expect_identical(jumped.out.matrix, clean.matrix);
    EXPECT_EQ(session.stats().breaker_jumps, 1U);

    // Request 5 is the probe (every 2nd while open): it runs the full
    // ladder, completes clean at the planned rung, and closes the breaker.
    const auto probe = session.multiply<double>(a, a);
    ASSERT_TRUE(probe.ok()) << probe.error_message;
    EXPECT_TRUE(probe.log.contains(RecoveryEvent::Kind::kBreakerProbe));
    EXPECT_TRUE(probe.log.contains(RecoveryEvent::Kind::kBreakerClose));
    EXPECT_EQ(probe.final_stage, RecoveryStage::kPlanned);
    EXPECT_FALSE(session.breaker().open());
    EXPECT_EQ(session.stats().breaker_closes, 1U);

    // Closed again: the next request runs the normal ladder.
    const auto after = session.multiply<double>(a, a);
    ASSERT_TRUE(after.ok()) << after.error_message;
    EXPECT_FALSE(after.log.contains(RecoveryEvent::Kind::kBreakerJump));
}

TEST(Session, BackoffSleepsAndLogsOnRepeatedOom)
{
    const auto a = pressure_matrix();
    SessionConfig cfg;
    cfg.policy.backoff_base_ms = 1;
    cfg.policy.backoff_max_ms = 2;
    Session session(std::move(cfg));

    for (int i = 0; i < 2; ++i) {
        sim::FaultPlan plan;
        plan.fail_at_alloc = 2;
        session.device().allocator().set_fault_plan(plan);
        const auto res = session.multiply<double>(a, a);
        ASSERT_TRUE(res.ok()) << res.error_message;
        EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kBackoff));
    }
    EXPECT_EQ(session.stats().backoffs, 2U);
}

TEST(Session, RecoveryLogMirrorsIntoDeviceTrace)
{
    const auto a = pressure_matrix();
    SessionConfig cfg = config_with_capacity(clean_run(a).peak * 3 / 4);
    cfg.admission = AdmissionMode::kAnnotate;  // let the OOM actually happen
    cfg.record_trace = true;
    Session session(std::move(cfg));

    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kEscalate));
    const std::string report = res.log.report();
    EXPECT_NE(report.find("escalate"), std::string::npos);

    // The escalation also landed in the device's fault-event stream.
    bool mirrored = false;
    for (const auto& ev : session.device().trace().fault_events()) {
        if (ev.label.rfind("session_", 0) == 0) { mirrored = true; }
    }
    EXPECT_TRUE(mirrored);
}

TEST(Session, BatchContainsFailuresPerProduct)
{
    const auto big = pressure_matrix();
    const auto small = gen::uniform_random(60, 60, 4, 11);
    const auto want_small = reference_spgemm(small, small);

    // Capacity admits the small products but rejects the big one outright
    // (sharded admission off — it would rescue the big product otherwise).
    auto cfg = config_with_capacity(big.byte_size() / 2);
    cfg.shard_devices = 0;
    Session session(cfg);
    const std::vector<const CsrMatrix<double>*> as = {&small, &big, &small};
    const std::vector<const CsrMatrix<double>*> bs = {&small, &big, &small};
    const auto out = session.multiply_batch<double>(as, bs);

    ASSERT_EQ(out.items.size(), 3U);
    ASSERT_TRUE(out.items[0].ok()) << out.items[0].error_message;
    EXPECT_FALSE(out.items[1].ok());
    EXPECT_EQ(out.items[1].outcome, RequestOutcome::kRejected);
    EXPECT_NE(out.items[1].error_message.find("batch product 1"), std::string::npos);
    ASSERT_TRUE(out.items[2].ok()) << out.items[2].error_message;
    expect_identical(out.items[0].out.matrix, want_small);
    expect_identical(out.items[2].out.matrix, want_small);

    EXPECT_EQ(out.stats.products, 3);
    EXPECT_EQ(out.stats.failed, 1);
    EXPECT_EQ(out.stats.rejected, 1);
}

TEST(Session, BatchPerProductDeadlineRollsUp)
{
    const auto a = pressure_matrix();
    Session session;
    const std::vector<const CsrMatrix<double>*> ms = {&a, &a};
    RequestBudget budget;
    budget.sim_seconds = 1e-9;
    const auto out = session.multiply_batch<double>(ms, ms, budget);
    ASSERT_EQ(out.items.size(), 2U);
    EXPECT_EQ(out.items[0].outcome, RequestOutcome::kDeadline);
    EXPECT_EQ(out.items[1].outcome, RequestOutcome::kDeadline);
    EXPECT_EQ(out.stats.deadline_exceeded, 2);
    EXPECT_EQ(out.stats.failed, 2);

    // The device is reusable after a fully-deadline-failed batch.
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
}

TEST(Session, BatchPropagatesPreconditionErrorsSynchronously)
{
    const auto a = gen::uniform_random(40, 40, 4, 5);
    const auto wrong = gen::uniform_random(30, 30, 4, 5);
    Session session;
    const std::vector<const CsrMatrix<double>*> as = {&a, &a};
    const std::vector<const CsrMatrix<double>*> bs = {&a, &wrong};
    EXPECT_THROW((void)session.multiply_batch<double>(as, bs), PreconditionError);
    const std::vector<const CsrMatrix<double>*> with_null = {&a, nullptr};
    EXPECT_THROW((void)session.multiply_batch<double>(as, with_null), PreconditionError);
}

TEST(Session, DimensionMismatchThrowsSynchronously)
{
    const auto a = gen::uniform_random(40, 40, 4, 5);
    const auto wrong = gen::uniform_random(30, 30, 4, 5);
    Session session;
    EXPECT_THROW((void)session.multiply<double>(a, wrong), PreconditionError);
    EXPECT_THROW((void)session.admit(a, wrong), PreconditionError);
    // The failed precondition did not count a request or poison the device.
    EXPECT_EQ(session.stats().requests, 0U);
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
}

TEST(Session, FloatAndDoubleInstantiationsAgree)
{
    const auto a = gen::uniform_random(80, 80, 5, 7);
    CsrMatrix<float> af;
    af.rows = a.rows;
    af.cols = a.cols;
    af.rpt = a.rpt;
    af.col = a.col;
    af.val.assign(a.val.begin(), a.val.end());
    Session session;
    const auto res = session.multiply<float>(af, af);
    ASSERT_TRUE(res.ok()) << res.error_message;
    const auto want = reference_spgemm(af, af);
    EXPECT_EQ(res.out.matrix.rpt, want.rpt);
    EXPECT_EQ(res.out.matrix.col, want.col);
    EXPECT_EQ(res.out.matrix.val, want.val);
}

}  // namespace
}  // namespace nsparse
