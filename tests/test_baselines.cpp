// Correctness of the three baseline SpGEMM implementations (ESC/CUSP,
// cuSPARSE-like, BHSPARSE-like) against the sequential reference, plus
// cross-algorithm agreement and baseline-specific behaviours (memory
// profile ordering, OOM).
#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

template <ValueType T>
std::vector<NamedAlgorithm<T>> all_algorithms()
{
    return {
        {"CUSP", [](sim::Device& d, const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
             return baseline::esc_spgemm<T>(d, a, b);
         }},
        {"cuSPARSE", [](sim::Device& d, const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
             return baseline::cusparse_spgemm<T>(d, a, b);
         }},
        {"BHSPARSE", [](sim::Device& d, const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
             return baseline::bhsparse_spgemm<T>(d, a, b);
         }},
        {"PROPOSAL", [](sim::Device& d, const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
             return hash_spgemm<T>(d, a, b);
         }},
    };
}

template <ValueType T>
void expect_all_match(const CsrMatrix<T>& a, const CsrMatrix<T>& b, double tol = 2e-5)
{
    const auto ref = reference_spgemm(a, b);
    for (const auto& alg : all_algorithms<T>()) {
        SCOPED_TRACE(alg.name);
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = alg.fn(dev, a, b);
        const auto diff = compare_csr(out.matrix, ref, tol);
        EXPECT_FALSE(diff.has_value()) << alg.name << ": " << *diff;
        EXPECT_EQ(out.stats.nnz_c, ref.nnz()) << alg.name;
        EXPECT_EQ(out.stats.intermediate_products, total_intermediate_products(a, b));
        EXPECT_GT(out.stats.seconds, 0.0) << alg.name;
        EXPECT_GT(out.stats.peak_bytes, 0U) << alg.name;
    }
}

TEST(Baselines, TinyHandComputed)
{
    CsrMatrix<double> a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
    CsrMatrix<double> b(2, 2, {0, 1, 2}, {1, 0}, {1, 4});
    const auto ref = reference_spgemm(a, b);
    for (const auto& alg : all_algorithms<double>()) {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        EXPECT_TRUE(approx_equal(alg.fn(dev, a, b).matrix, ref, 1e-14)) << alg.name;
    }
}

TEST(Baselines, EmptyMatrix)
{
    const auto a = CsrMatrix<double>::zero(50, 50);
    expect_all_match(a, a);
}

TEST(Baselines, Identity)
{
    const auto i = CsrMatrix<double>::identity(333);
    expect_all_match(i, i);
}

TEST(Baselines, RectangularDouble)
{
    const auto a = gen::uniform_random(60, 90, 5, 1);
    const auto b = gen::uniform_random(90, 40, 7, 2);
    expect_all_match(a, b);
}

TEST(Baselines, UniformSquareDouble)
{
    const auto a = gen::uniform_random(700, 700, 9, 3);
    expect_all_match(a, a);
}

TEST(Baselines, UniformSquareFloat)
{
    const auto a = convert_values<float>(gen::uniform_random(700, 700, 9, 3));
    expect_all_match(a, a, 2e-4);
}

TEST(Baselines, FemLikeDenseRows)
{
    gen::FemParams p;
    p.nodes = 150;
    p.block_size = 3;
    p.avg_blocks = 24;
    p.bandwidth = 50;
    p.seed = 4;
    expect_all_match(gen::fem_like(p), gen::fem_like(p));
}

TEST(Baselines, PowerLawHubRows)
{
    gen::ScaleFreeParams p;
    p.rows = 2500;
    p.avg_degree = 4.0;
    p.max_degree = 800;  // hub rows exercise fallback/merge paths
    p.alpha = 1.4;
    p.seed = 5;
    const auto a = gen::scale_free(p);
    expect_all_match(a, a);
}

TEST(Baselines, GridStencil)
{
    const auto a = gen::grid2d(40, 40, true, 6);
    expect_all_match(a, a);
}

struct SweepParam {
    index_t n;
    index_t degree;
    std::uint64_t seed;
};

class BaselineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BaselineSweep, AllAlgorithmsAgree)
{
    const auto [n, degree, seed] = GetParam();
    const auto a = gen::uniform_random(n, n, degree, seed);
    expect_all_match(a, a);
}

INSTANTIATE_TEST_SUITE_P(Grid, BaselineSweep,
                         ::testing::Values(SweepParam{32, 2, 1}, SweepParam{128, 4, 2},
                                           SweepParam{128, 16, 3}, SweepParam{512, 3, 4},
                                           SweepParam{512, 24, 5}, SweepParam{2048, 6, 6}));

TEST(BaselineMemory, EscUsesUpperBoundScaleMemory)
{
    // ESC peak memory must dominate everyone else's on a matrix with a
    // high intermediate-products : nnz(C) ratio.
    gen::FemParams p;
    p.nodes = 200;
    p.block_size = 3;
    p.avg_blocks = 20;
    p.bandwidth = 40;
    p.seed = 7;
    const auto a = gen::fem_like(p);

    std::map<std::string, std::size_t> peak;
    for (const auto& alg : all_algorithms<double>()) {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        peak[alg.name] = alg.fn(dev, a, a).stats.peak_bytes;
    }
    EXPECT_GT(peak["CUSP"], peak["PROPOSAL"]);
    EXPECT_GT(peak["BHSPARSE"], peak["PROPOSAL"]);
    EXPECT_GT(peak["cuSPARSE"], peak["PROPOSAL"]);  // Fig. 4: proposal lowest
    EXPECT_GT(peak["CUSP"], peak["cuSPARSE"]);
}

TEST(BaselineMemory, EscThrowsDeviceOomOnSmallDevice)
{
    const auto a = gen::uniform_random(2000, 2000, 40, 8);  // ~3.2M products
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 32 * 1024 * 1024;  // 32 MB
    sim::Device dev(spec);
    EXPECT_THROW((void)baseline::esc_spgemm<double>(dev, a, a), DeviceOutOfMemory);
}

TEST(BaselineMemory, ProposalSurvivesWhereEscDies)
{
    const auto a = gen::uniform_random(2000, 2000, 40, 8);
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 32 * 1024 * 1024;
    {
        sim::Device dev(spec);
        EXPECT_THROW((void)baseline::bhsparse_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
    {
        sim::Device dev(spec);
        const auto out = hash_spgemm<double>(dev, a, a);  // must fit
        EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(a, a)));
    }
}

TEST(BaselineStats, CuSparseHasNoSetupPhase)
{
    const auto a = gen::uniform_random(300, 300, 6, 9);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto s = baseline::cusparse_spgemm<double>(dev, a, a).stats;
    EXPECT_DOUBLE_EQ(s.setup_seconds, 0.0);  // Fig. 5: cuSPARSE has count/calc/malloc only
    EXPECT_GT(s.count_seconds, 0.0);
    EXPECT_GT(s.calc_seconds, 0.0);
    EXPECT_GT(s.malloc_seconds, 0.0);
}

}  // namespace
}  // namespace nsparse
