file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_breakdown_double.dir/bench_fig6_breakdown_double.cpp.o"
  "CMakeFiles/bench_fig6_breakdown_double.dir/bench_fig6_breakdown_double.cpp.o.d"
  "bench_fig6_breakdown_double"
  "bench_fig6_breakdown_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_breakdown_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
