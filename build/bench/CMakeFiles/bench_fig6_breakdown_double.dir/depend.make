# Empty dependencies file for bench_fig6_breakdown_double.
# This may be replaced when dependencies are built.
