# Empty dependencies file for bench_fig5_breakdown_single.
# This may be replaced when dependencies are built.
