file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_breakdown_single.dir/bench_fig5_breakdown_single.cpp.o"
  "CMakeFiles/bench_fig5_breakdown_single.dir/bench_fig5_breakdown_single.cpp.o.d"
  "bench_fig5_breakdown_single"
  "bench_fig5_breakdown_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_breakdown_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
