# Empty dependencies file for bench_app_graph.
# This may be replaced when dependencies are built.
