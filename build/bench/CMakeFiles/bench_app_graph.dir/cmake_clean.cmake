file(REMOVE_RECURSE
  "CMakeFiles/bench_app_graph.dir/bench_app_graph.cpp.o"
  "CMakeFiles/bench_app_graph.dir/bench_app_graph.cpp.o.d"
  "bench_app_graph"
  "bench_app_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
