file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_groups.dir/bench_table1_groups.cpp.o"
  "CMakeFiles/bench_table1_groups.dir/bench_table1_groups.cpp.o.d"
  "bench_table1_groups"
  "bench_table1_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
