# Empty dependencies file for bench_fig3_perf_double.
# This may be replaced when dependencies are built.
