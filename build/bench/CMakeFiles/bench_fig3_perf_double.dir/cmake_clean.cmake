file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_perf_double.dir/bench_fig3_perf_double.cpp.o"
  "CMakeFiles/bench_fig3_perf_double.dir/bench_fig3_perf_double.cpp.o.d"
  "bench_fig3_perf_double"
  "bench_fig3_perf_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_perf_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
