# Empty dependencies file for bench_ablation_pwarp.
# This may be replaced when dependencies are built.
