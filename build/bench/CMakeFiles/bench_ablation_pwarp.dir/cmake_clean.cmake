file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pwarp.dir/bench_ablation_pwarp.cpp.o"
  "CMakeFiles/bench_ablation_pwarp.dir/bench_ablation_pwarp.cpp.o.d"
  "bench_ablation_pwarp"
  "bench_ablation_pwarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pwarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
