# Empty dependencies file for bench_fig2_perf_single.
# This may be replaced when dependencies are built.
