file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_perf_single.dir/bench_fig2_perf_single.cpp.o"
  "CMakeFiles/bench_fig2_perf_single.dir/bench_fig2_perf_single.cpp.o.d"
  "bench_fig2_perf_single"
  "bench_fig2_perf_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_perf_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
