file(REMOVE_RECURSE
  "CMakeFiles/bench_app_amg.dir/bench_app_amg.cpp.o"
  "CMakeFiles/bench_app_amg.dir/bench_app_amg.cpp.o.d"
  "bench_app_amg"
  "bench_app_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
