# Empty compiler generated dependencies file for bench_app_amg.
# This may be replaced when dependencies are built.
