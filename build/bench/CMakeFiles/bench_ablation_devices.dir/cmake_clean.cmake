file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_devices.dir/bench_ablation_devices.cpp.o"
  "CMakeFiles/bench_ablation_devices.dir/bench_ablation_devices.cpp.o.d"
  "bench_ablation_devices"
  "bench_ablation_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
