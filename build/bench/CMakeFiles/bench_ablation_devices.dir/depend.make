# Empty dependencies file for bench_ablation_devices.
# This may be replaced when dependencies are built.
