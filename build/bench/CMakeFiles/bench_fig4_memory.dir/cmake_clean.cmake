file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_memory.dir/bench_fig4_memory.cpp.o"
  "CMakeFiles/bench_fig4_memory.dir/bench_fig4_memory.cpp.o.d"
  "bench_fig4_memory"
  "bench_fig4_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
