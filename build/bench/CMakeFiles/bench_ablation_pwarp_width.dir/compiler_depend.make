# Empty compiler generated dependencies file for bench_ablation_pwarp_width.
# This may be replaced when dependencies are built.
