file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pwarp_width.dir/bench_ablation_pwarp_width.cpp.o"
  "CMakeFiles/bench_ablation_pwarp_width.dir/bench_ablation_pwarp_width.cpp.o.d"
  "bench_ablation_pwarp_width"
  "bench_ablation_pwarp_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pwarp_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
