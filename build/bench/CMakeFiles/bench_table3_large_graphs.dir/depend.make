# Empty dependencies file for bench_table3_large_graphs.
# This may be replaced when dependencies are built.
