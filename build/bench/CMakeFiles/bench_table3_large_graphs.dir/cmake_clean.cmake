file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_large_graphs.dir/bench_table3_large_graphs.cpp.o"
  "CMakeFiles/bench_table3_large_graphs.dir/bench_table3_large_graphs.cpp.o.d"
  "bench_table3_large_graphs"
  "bench_table3_large_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_large_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
