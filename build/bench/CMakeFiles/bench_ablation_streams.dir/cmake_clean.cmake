file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_streams.dir/bench_ablation_streams.cpp.o"
  "CMakeFiles/bench_ablation_streams.dir/bench_ablation_streams.cpp.o.d"
  "bench_ablation_streams"
  "bench_ablation_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
