file(REMOVE_RECURSE
  "libnsparse_matgen.a"
)
