# Empty compiler generated dependencies file for nsparse_matgen.
# This may be replaced when dependencies are built.
