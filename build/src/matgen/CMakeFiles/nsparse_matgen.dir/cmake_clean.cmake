file(REMOVE_RECURSE
  "CMakeFiles/nsparse_matgen.dir/dataset_suite.cpp.o"
  "CMakeFiles/nsparse_matgen.dir/dataset_suite.cpp.o.d"
  "CMakeFiles/nsparse_matgen.dir/generators.cpp.o"
  "CMakeFiles/nsparse_matgen.dir/generators.cpp.o.d"
  "libnsparse_matgen.a"
  "libnsparse_matgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
