
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matgen/dataset_suite.cpp" "src/matgen/CMakeFiles/nsparse_matgen.dir/dataset_suite.cpp.o" "gcc" "src/matgen/CMakeFiles/nsparse_matgen.dir/dataset_suite.cpp.o.d"
  "/root/repo/src/matgen/generators.cpp" "src/matgen/CMakeFiles/nsparse_matgen.dir/generators.cpp.o" "gcc" "src/matgen/CMakeFiles/nsparse_matgen.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/nsparse_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
