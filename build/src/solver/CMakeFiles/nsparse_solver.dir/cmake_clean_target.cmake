file(REMOVE_RECURSE
  "libnsparse_solver.a"
)
