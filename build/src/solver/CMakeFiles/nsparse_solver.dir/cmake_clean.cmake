file(REMOVE_RECURSE
  "CMakeFiles/nsparse_solver.dir/amg.cpp.o"
  "CMakeFiles/nsparse_solver.dir/amg.cpp.o.d"
  "CMakeFiles/nsparse_solver.dir/cg.cpp.o"
  "CMakeFiles/nsparse_solver.dir/cg.cpp.o.d"
  "libnsparse_solver.a"
  "libnsparse_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
