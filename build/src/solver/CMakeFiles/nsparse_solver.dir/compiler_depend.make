# Empty compiler generated dependencies file for nsparse_solver.
# This may be replaced when dependencies are built.
