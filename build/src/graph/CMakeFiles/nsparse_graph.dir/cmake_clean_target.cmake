file(REMOVE_RECURSE
  "libnsparse_graph.a"
)
