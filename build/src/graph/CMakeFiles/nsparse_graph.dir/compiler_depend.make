# Empty compiler generated dependencies file for nsparse_graph.
# This may be replaced when dependencies are built.
