file(REMOVE_RECURSE
  "CMakeFiles/nsparse_graph.dir/algorithms.cpp.o"
  "CMakeFiles/nsparse_graph.dir/algorithms.cpp.o.d"
  "libnsparse_graph.a"
  "libnsparse_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
