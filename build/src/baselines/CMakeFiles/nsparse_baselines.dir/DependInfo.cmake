
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bhsparse.cpp" "src/baselines/CMakeFiles/nsparse_baselines.dir/bhsparse.cpp.o" "gcc" "src/baselines/CMakeFiles/nsparse_baselines.dir/bhsparse.cpp.o.d"
  "/root/repo/src/baselines/cusparse_like.cpp" "src/baselines/CMakeFiles/nsparse_baselines.dir/cusparse_like.cpp.o" "gcc" "src/baselines/CMakeFiles/nsparse_baselines.dir/cusparse_like.cpp.o.d"
  "/root/repo/src/baselines/esc.cpp" "src/baselines/CMakeFiles/nsparse_baselines.dir/esc.cpp.o" "gcc" "src/baselines/CMakeFiles/nsparse_baselines.dir/esc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/nsparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/nsparse_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsparse_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
