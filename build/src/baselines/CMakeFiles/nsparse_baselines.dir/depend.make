# Empty dependencies file for nsparse_baselines.
# This may be replaced when dependencies are built.
