file(REMOVE_RECURSE
  "libnsparse_baselines.a"
)
