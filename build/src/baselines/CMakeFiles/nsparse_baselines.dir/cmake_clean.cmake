file(REMOVE_RECURSE
  "CMakeFiles/nsparse_baselines.dir/bhsparse.cpp.o"
  "CMakeFiles/nsparse_baselines.dir/bhsparse.cpp.o.d"
  "CMakeFiles/nsparse_baselines.dir/cusparse_like.cpp.o"
  "CMakeFiles/nsparse_baselines.dir/cusparse_like.cpp.o.d"
  "CMakeFiles/nsparse_baselines.dir/esc.cpp.o"
  "CMakeFiles/nsparse_baselines.dir/esc.cpp.o.d"
  "libnsparse_baselines.a"
  "libnsparse_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
