file(REMOVE_RECURSE
  "CMakeFiles/nsparse_gpusim.dir/device.cpp.o"
  "CMakeFiles/nsparse_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/nsparse_gpusim.dir/scheduler.cpp.o"
  "CMakeFiles/nsparse_gpusim.dir/scheduler.cpp.o.d"
  "CMakeFiles/nsparse_gpusim.dir/trace.cpp.o"
  "CMakeFiles/nsparse_gpusim.dir/trace.cpp.o.d"
  "libnsparse_gpusim.a"
  "libnsparse_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
