# Empty dependencies file for nsparse_gpusim.
# This may be replaced when dependencies are built.
