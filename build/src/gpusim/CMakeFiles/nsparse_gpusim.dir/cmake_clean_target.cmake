file(REMOVE_RECURSE
  "libnsparse_gpusim.a"
)
