
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/scheduler.cpp" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/scheduler.cpp.o" "gcc" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/scheduler.cpp.o.d"
  "/root/repo/src/gpusim/trace.cpp" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/trace.cpp.o" "gcc" "src/gpusim/CMakeFiles/nsparse_gpusim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/nsparse_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
