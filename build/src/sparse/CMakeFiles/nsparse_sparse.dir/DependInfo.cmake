
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/io_matrix_market.cpp" "src/sparse/CMakeFiles/nsparse_sparse.dir/io_matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/nsparse_sparse.dir/io_matrix_market.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/nsparse_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/nsparse_sparse.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
