# Empty dependencies file for nsparse_sparse.
# This may be replaced when dependencies are built.
