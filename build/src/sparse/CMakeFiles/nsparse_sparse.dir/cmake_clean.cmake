file(REMOVE_RECURSE
  "CMakeFiles/nsparse_sparse.dir/io_matrix_market.cpp.o"
  "CMakeFiles/nsparse_sparse.dir/io_matrix_market.cpp.o.d"
  "CMakeFiles/nsparse_sparse.dir/stats.cpp.o"
  "CMakeFiles/nsparse_sparse.dir/stats.cpp.o.d"
  "libnsparse_sparse.a"
  "libnsparse_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
