file(REMOVE_RECURSE
  "libnsparse_sparse.a"
)
