
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/nsparse_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/nsparse_core.dir/grouping.cpp.o.d"
  "/root/repo/src/core/spgemm.cpp" "src/core/CMakeFiles/nsparse_core.dir/spgemm.cpp.o" "gcc" "src/core/CMakeFiles/nsparse_core.dir/spgemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/nsparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/nsparse_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
