file(REMOVE_RECURSE
  "CMakeFiles/nsparse_core.dir/grouping.cpp.o"
  "CMakeFiles/nsparse_core.dir/grouping.cpp.o.d"
  "CMakeFiles/nsparse_core.dir/spgemm.cpp.o"
  "CMakeFiles/nsparse_core.dir/spgemm.cpp.o.d"
  "libnsparse_core.a"
  "libnsparse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsparse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
