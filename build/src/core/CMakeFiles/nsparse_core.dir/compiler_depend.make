# Empty compiler generated dependencies file for nsparse_core.
# This may be replaced when dependencies are built.
