file(REMOVE_RECURSE
  "libnsparse_core.a"
)
