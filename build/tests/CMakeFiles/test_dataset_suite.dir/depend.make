# Empty dependencies file for test_dataset_suite.
# This may be replaced when dependencies are built.
