file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_suite.dir/test_dataset_suite.cpp.o"
  "CMakeFiles/test_dataset_suite.dir/test_dataset_suite.cpp.o.d"
  "test_dataset_suite"
  "test_dataset_suite.pdb"
  "test_dataset_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
