# Empty dependencies file for test_reference_spgemm.
# This may be replaced when dependencies are built.
