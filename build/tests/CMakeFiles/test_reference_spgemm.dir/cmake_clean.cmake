file(REMOVE_RECURSE
  "CMakeFiles/test_reference_spgemm.dir/test_reference_spgemm.cpp.o"
  "CMakeFiles/test_reference_spgemm.dir/test_reference_spgemm.cpp.o.d"
  "test_reference_spgemm"
  "test_reference_spgemm.pdb"
  "test_reference_spgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
