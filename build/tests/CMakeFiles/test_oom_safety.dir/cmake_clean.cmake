file(REMOVE_RECURSE
  "CMakeFiles/test_oom_safety.dir/test_oom_safety.cpp.o"
  "CMakeFiles/test_oom_safety.dir/test_oom_safety.cpp.o.d"
  "test_oom_safety"
  "test_oom_safety.pdb"
  "test_oom_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oom_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
