# Empty dependencies file for test_oom_safety.
# This may be replaced when dependencies are built.
