file(REMOVE_RECURSE
  "CMakeFiles/test_device_specs.dir/test_device_specs.cpp.o"
  "CMakeFiles/test_device_specs.dir/test_device_specs.cpp.o.d"
  "test_device_specs"
  "test_device_specs.pdb"
  "test_device_specs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
