# Empty dependencies file for test_device_specs.
# This may be replaced when dependencies are built.
