# Empty dependencies file for test_csr_ops.
# This may be replaced when dependencies are built.
