file(REMOVE_RECURSE
  "CMakeFiles/test_csr_ops.dir/test_csr_ops.cpp.o"
  "CMakeFiles/test_csr_ops.dir/test_csr_ops.cpp.o.d"
  "test_csr_ops"
  "test_csr_ops.pdb"
  "test_csr_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
