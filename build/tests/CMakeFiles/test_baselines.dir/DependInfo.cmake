
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/test_baselines.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/test_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsparse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/nsparse_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsparse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nsparse_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/matgen/CMakeFiles/nsparse_matgen.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/nsparse_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/nsparse_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
