file(REMOVE_RECURSE
  "CMakeFiles/test_hash_table.dir/test_hash_table.cpp.o"
  "CMakeFiles/test_hash_table.dir/test_hash_table.cpp.o.d"
  "test_hash_table"
  "test_hash_table.pdb"
  "test_hash_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
