file(REMOVE_RECURSE
  "CMakeFiles/test_spmv_device.dir/test_spmv_device.cpp.o"
  "CMakeFiles/test_spmv_device.dir/test_spmv_device.cpp.o.d"
  "test_spmv_device"
  "test_spmv_device.pdb"
  "test_spmv_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmv_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
