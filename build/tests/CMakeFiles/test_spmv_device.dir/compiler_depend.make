# Empty compiler generated dependencies file for test_spmv_device.
# This may be replaced when dependencies are built.
