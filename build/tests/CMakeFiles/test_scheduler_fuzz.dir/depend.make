# Empty dependencies file for test_scheduler_fuzz.
# This may be replaced when dependencies are built.
