file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_fuzz.dir/test_scheduler_fuzz.cpp.o"
  "CMakeFiles/test_scheduler_fuzz.dir/test_scheduler_fuzz.cpp.o.d"
  "test_scheduler_fuzz"
  "test_scheduler_fuzz.pdb"
  "test_scheduler_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
