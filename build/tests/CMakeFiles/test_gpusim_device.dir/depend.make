# Empty dependencies file for test_gpusim_device.
# This may be replaced when dependencies are built.
