file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_device.dir/test_gpusim_device.cpp.o"
  "CMakeFiles/test_gpusim_device.dir/test_gpusim_device.cpp.o.d"
  "test_gpusim_device"
  "test_gpusim_device.pdb"
  "test_gpusim_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
