# Empty dependencies file for test_memory_estimator.
# This may be replaced when dependencies are built.
