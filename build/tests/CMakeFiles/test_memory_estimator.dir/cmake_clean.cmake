file(REMOVE_RECURSE
  "CMakeFiles/test_memory_estimator.dir/test_memory_estimator.cpp.o"
  "CMakeFiles/test_memory_estimator.dir/test_memory_estimator.cpp.o.d"
  "test_memory_estimator"
  "test_memory_estimator.pdb"
  "test_memory_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
