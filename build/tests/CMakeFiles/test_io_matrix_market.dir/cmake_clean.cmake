file(REMOVE_RECURSE
  "CMakeFiles/test_io_matrix_market.dir/test_io_matrix_market.cpp.o"
  "CMakeFiles/test_io_matrix_market.dir/test_io_matrix_market.cpp.o.d"
  "test_io_matrix_market"
  "test_io_matrix_market.pdb"
  "test_io_matrix_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_matrix_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
