# Empty dependencies file for test_io_matrix_market.
# This may be replaced when dependencies are built.
