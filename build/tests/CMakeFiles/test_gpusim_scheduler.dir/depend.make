# Empty dependencies file for test_gpusim_scheduler.
# This may be replaced when dependencies are built.
