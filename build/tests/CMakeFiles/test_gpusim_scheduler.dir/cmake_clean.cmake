file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_scheduler.dir/test_gpusim_scheduler.cpp.o"
  "CMakeFiles/test_gpusim_scheduler.dir/test_gpusim_scheduler.cpp.o.d"
  "test_gpusim_scheduler"
  "test_gpusim_scheduler.pdb"
  "test_gpusim_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
