file(REMOVE_RECURSE
  "CMakeFiles/test_grouping.dir/test_grouping.cpp.o"
  "CMakeFiles/test_grouping.dir/test_grouping.cpp.o.d"
  "test_grouping"
  "test_grouping.pdb"
  "test_grouping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
