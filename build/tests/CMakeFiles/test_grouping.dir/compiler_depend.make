# Empty compiler generated dependencies file for test_grouping.
# This may be replaced when dependencies are built.
