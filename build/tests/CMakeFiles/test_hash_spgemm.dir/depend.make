# Empty dependencies file for test_hash_spgemm.
# This may be replaced when dependencies are built.
