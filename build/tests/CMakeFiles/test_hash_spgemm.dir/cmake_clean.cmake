file(REMOVE_RECURSE
  "CMakeFiles/test_hash_spgemm.dir/test_hash_spgemm.cpp.o"
  "CMakeFiles/test_hash_spgemm.dir/test_hash_spgemm.cpp.o.d"
  "test_hash_spgemm"
  "test_hash_spgemm.pdb"
  "test_hash_spgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
