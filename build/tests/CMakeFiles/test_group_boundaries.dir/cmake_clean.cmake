file(REMOVE_RECURSE
  "CMakeFiles/test_group_boundaries.dir/test_group_boundaries.cpp.o"
  "CMakeFiles/test_group_boundaries.dir/test_group_boundaries.cpp.o.d"
  "test_group_boundaries"
  "test_group_boundaries.pdb"
  "test_group_boundaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
