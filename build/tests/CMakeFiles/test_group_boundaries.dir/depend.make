# Empty dependencies file for test_group_boundaries.
# This may be replaced when dependencies are built.
