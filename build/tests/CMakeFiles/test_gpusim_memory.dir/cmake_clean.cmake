file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_memory.dir/test_gpusim_memory.cpp.o"
  "CMakeFiles/test_gpusim_memory.dir/test_gpusim_memory.cpp.o.d"
  "test_gpusim_memory"
  "test_gpusim_memory.pdb"
  "test_gpusim_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
