# Empty dependencies file for test_gpusim_memory.
# This may be replaced when dependencies are built.
