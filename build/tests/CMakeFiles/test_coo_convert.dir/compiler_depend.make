# Empty compiler generated dependencies file for test_coo_convert.
# This may be replaced when dependencies are built.
