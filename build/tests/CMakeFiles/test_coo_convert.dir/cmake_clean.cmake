file(REMOVE_RECURSE
  "CMakeFiles/test_coo_convert.dir/test_coo_convert.cpp.o"
  "CMakeFiles/test_coo_convert.dir/test_coo_convert.cpp.o.d"
  "test_coo_convert"
  "test_coo_convert.pdb"
  "test_coo_convert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coo_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
