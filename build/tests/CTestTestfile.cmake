# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_csr[1]_include.cmake")
include("/root/repo/build/tests/test_coo_convert[1]_include.cmake")
include("/root/repo/build/tests/test_reference_spgemm[1]_include.cmake")
include("/root/repo/build/tests/test_io_matrix_market[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim_memory[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim_device[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_dataset_suite[1]_include.cmake")
include("/root/repo/build/tests/test_hash_table[1]_include.cmake")
include("/root/repo/build/tests/test_grouping[1]_include.cmake")
include("/root/repo/build/tests/test_hash_spgemm[1]_include.cmake")
include("/root/repo/build/tests/test_memory_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_group_boundaries[1]_include.cmake")
include("/root/repo/build/tests/test_spmv_device[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_device_specs[1]_include.cmake")
include("/root/repo/build/tests/test_oom_safety[1]_include.cmake")
include("/root/repo/build/tests/test_csr_ops[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
