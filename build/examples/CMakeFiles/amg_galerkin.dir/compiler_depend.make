# Empty compiler generated dependencies file for amg_galerkin.
# This may be replaced when dependencies are built.
