file(REMOVE_RECURSE
  "CMakeFiles/graph_clustering.dir/graph_clustering.cpp.o"
  "CMakeFiles/graph_clustering.dir/graph_clustering.cpp.o.d"
  "graph_clustering"
  "graph_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
