# Empty dependencies file for graph_clustering.
# This may be replaced when dependencies are built.
