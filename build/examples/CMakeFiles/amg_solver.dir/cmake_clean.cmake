file(REMOVE_RECURSE
  "CMakeFiles/amg_solver.dir/amg_solver.cpp.o"
  "CMakeFiles/amg_solver.dir/amg_solver.cpp.o.d"
  "amg_solver"
  "amg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
