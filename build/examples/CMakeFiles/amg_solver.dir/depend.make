# Empty dependencies file for amg_solver.
# This may be replaced when dependencies are built.
