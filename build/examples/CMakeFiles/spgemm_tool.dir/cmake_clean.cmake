file(REMOVE_RECURSE
  "CMakeFiles/spgemm_tool.dir/spgemm_tool.cpp.o"
  "CMakeFiles/spgemm_tool.dir/spgemm_tool.cpp.o.d"
  "spgemm_tool"
  "spgemm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
