# Empty dependencies file for spgemm_tool.
# This may be replaced when dependencies are built.
