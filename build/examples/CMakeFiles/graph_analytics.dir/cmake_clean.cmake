file(REMOVE_RECURSE
  "CMakeFiles/graph_analytics.dir/graph_analytics.cpp.o"
  "CMakeFiles/graph_analytics.dir/graph_analytics.cpp.o.d"
  "graph_analytics"
  "graph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
