// Markov-Cluster-style graph clustering — the paper's second motivating
// application (§I cites Van Dongen's "Graph Clustering Via a Discrete
// Uncoupling Process", which iterates *expansion* = squaring the column-
// stochastic adjacency matrix via SpGEMM, and *inflation* = elementwise
// powering + renormalisation).
//
// Runs a few MCL iterations on a synthetic power-law graph; all expansion
// steps use the paper's hash SpGEMM on the simulated P100 and are checked
// against the sequential reference in the first iteration.
//
//   $ ./examples/graph_clustering [vertices]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"
#include "sparse/transpose.hpp"

namespace {

using namespace nsparse;

/// Normalise columns to sum 1 (column-stochastic).
void normalize_columns(CsrMatrix<double>& m)
{
    std::vector<double> colsum(to_size(m.cols), 0.0);
    for (std::size_t k = 0; k < m.col.size(); ++k) { colsum[to_size(m.col[k])] += m.val[k]; }
    for (std::size_t k = 0; k < m.col.size(); ++k) {
        const double s = colsum[to_size(m.col[k])];
        if (s > 0.0) { m.val[k] /= s; }
    }
}

/// MCL inflation: elementwise power r, column renormalise, prune tiny
/// entries (keeps the matrix sparse across iterations).
CsrMatrix<double> inflate(const CsrMatrix<double>& m, double r, double prune)
{
    CsrMatrix<double> out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.rpt.assign(to_size(m.rows) + 1, 0);
    std::vector<double> colsum(to_size(m.cols), 0.0);
    for (std::size_t k = 0; k < m.col.size(); ++k) {
        colsum[to_size(m.col[k])] += std::pow(m.val[k], r);
    }
    for (index_t i = 0; i < m.rows; ++i) {
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            const double v = std::pow(m.val[to_size(k)], r) / colsum[to_size(m.col[to_size(k)])];
            if (v > prune) {
                out.col.push_back(m.col[to_size(k)]);
                out.val.push_back(v);
            }
        }
        out.rpt[to_size(i) + 1] = to_index(out.col.size());
    }
    out.validate();
    normalize_columns(out);
    return out;
}

/// Count "attractor" clusters: columns whose mass concentrates on one row.
index_t count_clusters(const CsrMatrix<double>& m)
{
    std::vector<bool> attractor(to_size(m.rows), false);
    for (index_t i = 0; i < m.rows; ++i) {
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            if (m.col[to_size(k)] == i && m.val[to_size(k)] > 0.5) {
                attractor[to_size(i)] = true;
            }
        }
    }
    index_t n = 0;
    for (const bool b : attractor) { n += b ? 1 : 0; }
    return n;
}

}  // namespace

int main(int argc, char** argv)
{
    const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 4000;

    gen::ScaleFreeParams p;
    p.rows = n;
    p.avg_degree = 5.0;
    p.max_degree = std::max<index_t>(32, n / 50);
    p.alpha = 1.8;
    p.locality = 0.7;  // communities: local edges dominate
    p.seed = 2026;
    // Symmetric adjacency plus self loops (self loops stabilise MCL).
    CsrMatrix<double> g;
    {
        CooMatrix<double> coo = to_coo(symmetrize(gen::scale_free(p)));
        for (index_t i = 0; i < n; ++i) {
            coo.row.push_back(i);
            coo.col.push_back(i);
            coo.val.push_back(1.0);
        }
        coo.compress();
        g = to_csr(coo);
    }
    normalize_columns(g);

    std::printf("MCL clustering on a %d-vertex power-law graph (nnz = %d)\n\n", n, g.nnz());
    std::printf("%-5s %12s %12s %14s %10s\n", "iter", "nnz", "products", "ms", "GFLOPS");

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    for (int iter = 0; iter < 6; ++iter) {
        const auto sq = hash_spgemm<double>(dev, g, g);  // expansion
        if (iter == 0) {
            // sanity: verify the GPU-model result once
            if (!approx_equal(sq.matrix, reference_spgemm(g, g), 1e-8)) {
                std::fprintf(stderr, "expansion mismatch vs reference!\n");
                return 1;
            }
        }
        g = inflate(sq.matrix, 2.0, 1e-4);  // inflation
        std::printf("%-5d %12d %14lld %12.3f %10.2f\n", iter, g.nnz(),
                    static_cast<long long>(sq.stats.intermediate_products),
                    sq.stats.seconds * 1e3, sq.stats.gflops());
    }
    std::printf("\nclusters (attractors with >0.5 self-mass): %d\n", count_clusters(g));
    return 0;
}
