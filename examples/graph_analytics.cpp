// Graph analytics on SpGEMM: triangle counting and multi-source BFS over a
// synthetic social-network-like graph (the paper's §I second motivation,
// via the graph substrate in src/graph/).
//
//   $ ./examples/graph_analytics [vertices]
#include <cstdio>
#include <cstdlib>

#include "graph/algorithms.hpp"
#include "matgen/generators.hpp"
#include "sparse/transpose.hpp"

int main(int argc, char** argv)
{
    using namespace nsparse;
    const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 20000;

    gen::ScaleFreeParams p;
    p.rows = std::max<index_t>(n, 64);
    p.avg_degree = 6.0;
    p.max_degree = std::max<index_t>(64, p.rows / 40);
    p.alpha = 1.8;
    p.locality = 0.6;  // community structure -> triangles
    p.seed = 7;
    const auto g = symmetrize(gen::scale_free(p));
    std::printf("graph: %d vertices, %d edges\n\n", g.rows, g.nnz() / 2);

    sim::Device dev(sim::DeviceSpec::pascal_p100());

    const auto triangles = graph::triangle_count(dev, g);
    std::printf("triangles (A^2 masked by A): %lld\n", static_cast<long long>(triangles));

    const std::vector<index_t> sources{0, p.rows / 3, 2 * p.rows / 3};
    const auto bfs = graph::multi_source_bfs(dev, g, std::span<const index_t>(sources));
    std::printf("\nmulti-source BFS (%zu sources, %d levels, %lld products, %.3f ms "
                "simulated):\n",
                sources.size(), bfs.levels, static_cast<long long>(bfs.spgemm_products),
                bfs.spgemm_seconds * 1e3);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        index_t reached = 0;
        index_t max_d = 0;
        for (const index_t d : bfs.distances[s]) {
            if (d >= 0) {
                ++reached;
                max_d = std::max(max_d, d);
            }
        }
        std::printf("  source %6d: reached %d vertices, eccentricity %d\n",
                    sources[s], reached, max_d);
    }

    const auto mcl = graph::markov_clustering(dev, g, {.max_iterations = 12});
    std::printf("\nMarkov clustering: %d clusters after %d iterations "
                "(%lld products, %.3f ms simulated)\n",
                mcl.clusters, mcl.iterations, static_cast<long long>(mcl.spgemm_products),
                mcl.spgemm_seconds * 1e3);
    return 0;
}
