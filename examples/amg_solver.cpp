// End-to-end AMG-preconditioned CG solve — the application the paper's
// introduction motivates SpGEMM with, built entirely on this library:
// the hierarchy's prolongation smoothing and Galerkin products run the
// hash SpGEMM on the simulated P100.
//
//   $ ./examples/amg_solver [grid_side]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "solver/amg.hpp"
#include "solver/cg.hpp"

namespace {

using namespace nsparse;

CsrMatrix<double> poisson2d(index_t n)
{
    CsrMatrix<double> m;
    m.rows = m.cols = n * n;
    m.rpt.assign(to_size(m.rows) + 1, 0);
    const auto at = [n](index_t x, index_t y) { return y * n + x; };
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const auto push = [&](index_t xx, index_t yy, double v) {
                if (xx < 0 || xx >= n || yy < 0 || yy >= n) { return; }
                m.col.push_back(at(xx, yy));
                m.val.push_back(v);
            };
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            m.rpt[to_size(at(x, y)) + 1] = to_index(m.col.size());
        }
    }
    m.validate();
    return m;
}

}  // namespace

int main(int argc, char** argv)
{
    const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 96;
    const auto a = poisson2d(std::max<index_t>(side, 8));
    const auto n = to_size(a.rows);
    std::printf("Poisson %dx%d: n = %zu, nnz = %d\n\n", side, side, n, a.nnz());

    // --- AMG setup: the SpGEMM-heavy part, on the simulated P100 ---
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const solver::AmgHierarchy amg(dev, a);
    const auto& st = amg.stats();
    std::printf("AMG hierarchy: %d levels, operator complexity %.2f\n", st.levels,
                st.operator_complexity);
    std::printf("  setup SpGEMM: %lld intermediate products, %.3f ms simulated\n",
                static_cast<long long>(st.total_spgemm_products), st.spgemm_seconds * 1e3);
    std::printf("  level sizes:");
    for (const auto& lv : amg.levels()) { std::printf(" %d", lv.a.rows); }
    std::printf("\n\n");

    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) { b[i] = std::sin(0.01 * static_cast<double>(i)); }

    // --- plain CG vs AMG-preconditioned CG ---
    std::vector<double> x1(n, 0.0);
    const auto plain = solver::conjugate_gradient(a, std::span<const double>(b),
                                                  std::span<double>(x1));
    std::vector<double> x2(n, 0.0);
    const auto pre = solver::conjugate_gradient(
        a, std::span<const double>(b), std::span<double>(x2), {},
        [&](std::span<const double> r, std::span<double> z) { amg.v_cycle(r, z); });

    std::printf("%-16s %12s %16s %10s\n", "solver", "iterations", "rel. residual",
                "converged");
    std::printf("%-16s %12d %16.2e %10s\n", "CG", plain.iterations, plain.relative_residual,
                plain.converged ? "yes" : "no");
    std::printf("%-16s %12d %16.2e %10s\n", "CG + AMG", pre.iterations,
                pre.relative_residual, pre.converged ? "yes" : "no");
    return (plain.converged && pre.converged && pre.iterations < plain.iterations) ? 0 : 1;
}
