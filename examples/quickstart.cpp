// Quickstart: build two small sparse matrices, multiply them with the
// paper's hash SpGEMM, and inspect result + execution statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"

int main()
{
    using namespace nsparse;

    // A 2-D periodic grid Laplacian-like pattern, 4 nonzeros per row.
    const CsrMatrix<double> a = gen::grid2d(64, 64, /*periodic=*/true, /*seed=*/42);
    std::printf("A: %d x %d, nnz = %d\n", a.rows, a.cols, a.nnz());

    // One-liner: multiply on an internally created simulated P100.
    const CsrMatrix<double> c = multiply<double>(a, a);
    std::printf("C = A*A: %d x %d, nnz = %d (rows sorted: %s)\n", c.rows, c.cols, c.nnz(),
                c.has_sorted_rows() ? "yes" : "no");

    // Full-control variant: own device, options, detailed stats.
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    core::Options opt;
    opt.use_streams = true;  // the paper's multi-stream group execution
    const auto out = hash_spgemm<double>(dev, a, a, opt);

    const auto& s = out.stats;
    std::printf("\nsimulated execution on Tesla P100:\n");
    std::printf("  intermediate products : %lld\n", static_cast<long long>(s.intermediate_products));
    std::printf("  nnz(C)                : %lld\n", static_cast<long long>(s.nnz_c));
    std::printf("  simulated time        : %.3f ms\n", s.seconds * 1e3);
    std::printf("    setup  %.3f ms | count %.3f ms | calc %.3f ms | malloc %.3f ms\n",
                s.setup_seconds * 1e3, s.count_seconds * 1e3, s.calc_seconds * 1e3,
                s.malloc_seconds * 1e3);
    std::printf("  throughput            : %.2f GFLOPS\n", s.gflops());
    std::printf("  peak device memory    : %.2f MB\n",
                static_cast<double>(s.peak_bytes) / (1024.0 * 1024.0));
    return 0;
}
