// AMG Galerkin triple product — the paper's first motivating application
// (§I: "Algebraic multigrid (AMG) method for preconditioner of iterative
// method").
//
// Builds a 2-D Poisson operator A on an n x n grid, a piecewise-constant
// prolongation P aggregating 2x2 cells, and computes the coarse operator
//     A_c = R (A P),   R = P^T
// with two hash-SpGEMM calls, repeating down a short multigrid hierarchy.
// Verifies each level against the sequential reference.
//
//   $ ./examples/amg_galerkin [grid_side]
#include <cstdio>
#include <cstdlib>

#include "core/spgemm.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"
#include "sparse/transpose.hpp"

namespace {

using namespace nsparse;

/// 5-point 2-D Poisson matrix on an n x n grid.
CsrMatrix<double> poisson2d(index_t n)
{
    CsrMatrix<double> m;
    m.rows = m.cols = n * n;
    m.rpt.assign(to_size(m.rows) + 1, 0);
    const auto at = [n](index_t x, index_t y) { return y * n + x; };
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const auto push = [&](index_t xx, index_t yy, double v) {
                if (xx < 0 || xx >= n || yy < 0 || yy >= n) { return; }
                m.col.push_back(at(xx, yy));
                m.val.push_back(v);
            };
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            m.rpt[to_size(at(x, y)) + 1] = to_index(m.col.size());
        }
    }
    m.validate();
    return m;
}

/// Piecewise-constant aggregation prolongation: fine (n x n) -> coarse
/// (n/2 x n/2), each coarse dof averaging a 2x2 cell.
CsrMatrix<double> aggregation_prolongation(index_t n)
{
    const index_t nc = n / 2;
    CsrMatrix<double> p;
    p.rows = n * n;
    p.cols = nc * nc;
    p.rpt.assign(to_size(p.rows) + 1, 0);
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const index_t cx = std::min(x / 2, nc - 1);
            const index_t cy = std::min(y / 2, nc - 1);
            p.col.push_back(cy * nc + cx);
            p.val.push_back(0.5);
            p.rpt[to_size(y * n + x) + 1] = to_index(p.col.size());
        }
    }
    p.validate();
    return p;
}

}  // namespace

int main(int argc, char** argv)
{
    index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 128;
    if (n < 8) { n = 8; }

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    CsrMatrix<double> a = poisson2d(n);
    std::printf("AMG setup via Galerkin products (hash SpGEMM), fine grid %d x %d\n\n", n, n);
    std::printf("%-6s %12s %12s %14s %12s %10s\n", "level", "rows", "nnz", "products", "ms",
                "GFLOPS");

    int level = 0;
    while (n >= 8) {
        const auto p = aggregation_prolongation(n);
        const auto r = transpose(p);

        const auto ap = hash_spgemm<double>(dev, a, p);
        const auto ac = hash_spgemm<double>(dev, r, ap.matrix);

        // verify against the sequential reference
        const auto ref = reference_spgemm(r, reference_spgemm(a, p));
        if (!approx_equal(ac.matrix, ref, 1e-10)) {
            std::fprintf(stderr, "level %d: Galerkin product mismatch!\n", level);
            return 1;
        }

        std::printf("%-6d %12d %12d %14lld %12.3f %10.2f\n", level, a.rows, a.nnz(),
                    static_cast<long long>(ap.stats.intermediate_products +
                                           ac.stats.intermediate_products),
                    (ap.stats.seconds + ac.stats.seconds) * 1e3,
                    (ap.stats.gflops() + ac.stats.gflops()) / 2.0);

        a = ac.matrix;
        n /= 2;
        ++level;
    }
    std::printf("\ncoarsest operator: %d x %d with %d nonzeros — hierarchy verified.\n", a.rows,
                a.cols, a.nnz());
    return 0;
}
