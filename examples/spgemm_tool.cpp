// Command-line exploration tool: generate (or load) a matrix, square it
// with any of the four algorithms, print statistics.
//
//   $ ./examples/spgemm_tool --dataset Circuit --algo all
//   $ ./examples/spgemm_tool --dataset webbase --algo proposal --no-streams
//   $ ./examples/spgemm_tool --mtx path/to/matrix.mtx --algo cusparse --precision float
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/dataset_suite.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/stats.hpp"

namespace {

using namespace nsparse;

void usage()
{
    std::printf(
        "usage: spgemm_tool [--dataset NAME | --mtx FILE] [--algo "
        "cusp|cusparse|bhsparse|proposal|all]\n"
        "                   [--precision float|double] [--scale S] [--no-streams] "
        "[--no-pwarp] [--profile] [--list]\n");
}

bool g_profile = false;

template <ValueType T>
void run_one(const std::string& algo, const CsrMatrix<double>& ad, const core::Options& opt)
{
    const CsrMatrix<T> a = convert_values<T>(ad);
    const auto run = [&](const char* name, auto&& fn) {
        if (algo != "all" && algo != name) { return; }
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        if (g_profile) { dev.enable_trace(); }
        try {
            const auto out = fn(dev, a);
            std::printf("%-10s %10.3f ms  %8.2f GFLOPS  peak %8.2f MB  nnz(C) %lld\n", name,
                        out.stats.seconds * 1e3, out.stats.gflops(),
                        static_cast<double>(out.stats.peak_bytes) / (1024.0 * 1024.0),
                        static_cast<long long>(out.stats.nnz_c));
            std::printf("%-10s   setup %.3f  count %.3f  calc %.3f  malloc %.3f ms\n", "",
                        out.stats.setup_seconds * 1e3, out.stats.count_seconds * 1e3,
                        out.stats.calc_seconds * 1e3, out.stats.malloc_seconds * 1e3);
            if (g_profile) { std::printf("%s\n", dev.trace().report().c_str()); }
        } catch (const DeviceOutOfMemory&) {
            std::printf("%-10s out of device memory\n", name);
        }
    };
    run("cusp", [](sim::Device& d, const CsrMatrix<T>& m) {
        return baseline::esc_spgemm<T>(d, m, m);
    });
    run("cusparse", [](sim::Device& d, const CsrMatrix<T>& m) {
        return baseline::cusparse_spgemm<T>(d, m, m);
    });
    run("bhsparse", [](sim::Device& d, const CsrMatrix<T>& m) {
        return baseline::bhsparse_spgemm<T>(d, m, m);
    });
    run("proposal", [&opt](sim::Device& d, const CsrMatrix<T>& m) {
        return hash_spgemm<T>(d, m, m, opt);
    });
}

}  // namespace

int main(int argc, char** argv)
{
    std::string dataset = "Circuit";
    std::string mtx;
    std::string algo = "all";
    std::string precision = "double";
    double scale = 1.0;
    core::Options opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--dataset") {
            dataset = next();
        } else if (arg == "--mtx") {
            mtx = next();
        } else if (arg == "--algo") {
            algo = next();
        } else if (arg == "--precision") {
            precision = next();
        } else if (arg == "--scale") {
            scale = std::atof(next());
        } else if (arg == "--no-streams") {
            opt.use_streams = false;
        } else if (arg == "--no-pwarp") {
            opt.use_pwarp = false;
        } else if (arg == "--profile") {
            g_profile = true;
        } else if (arg == "--list") {
            for (const auto& s : gen::dataset_suite()) { std::printf("%s\n", s.name.c_str()); }
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    try {
        const CsrMatrix<double> a =
            mtx.empty() ? gen::make_dataset(dataset, scale) : read_matrix_market_file(mtx);
        const auto st = table2_stats(a, mtx.empty() ? dataset : mtx);
        std::printf("%s\n%s\n\n", format_stats_header().c_str(), format_stats_row(st).c_str());

        if (precision == "float") {
            run_one<float>(algo, a, opt);
        } else {
            run_one<double>(algo, a, opt);
        }
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
