// Application benchmark — graph analytics (the paper's §I second
// motivation): triangle counting and BFS with the SpGEMM engine swapped
// between the four implementations.
#include "common.hpp"

#include "graph/algorithms.hpp"
#include "matgen/generators.hpp"
#include "sparse/transpose.hpp"

namespace {

using namespace nsparse;

SpgemmFn<double> engine_for(const std::string& alg)
{
    return [alg](sim::Device& d, const CsrMatrix<double>& x, const CsrMatrix<double>& y) {
        if (alg == "CUSP") { return baseline::esc_spgemm<double>(d, x, y); }
        if (alg == "cuSPARSE") { return baseline::cusparse_spgemm<double>(d, x, y); }
        if (alg == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(d, x, y); }
        return hash_spgemm<double>(d, x, y);
    };
}

}  // namespace

int main()
{
    std::printf("Application benchmark: graph analytics via SpGEMM\n\n");

    gen::ScaleFreeParams p;
    p.rows = 60000;
    p.avg_degree = 6.0;
    p.max_degree = 1200;
    p.alpha = 1.7;
    p.locality = 0.6;
    p.seed = 3;
    const auto g = symmetrize(gen::scale_free(p));
    std::printf("power-law graph: %d vertices, %d edges\n\n", g.rows, g.nnz() / 2);

    std::printf("triangle counting (A^2 masked by A):\n");
    std::printf("%-10s %14s %12s\n", "engine", "triangles", "SpGEMM ms");
    for (const auto& alg : bench::algo_names()) {
        sim::Device dev = bench::make_device(8.0);
        const auto eng = engine_for(alg);
        // measure the one SpGEMM inside
        const auto sq = eng(dev, g, g);
        const auto triangles = graph::triangle_count(dev, g, eng);
        std::printf("%-10s %14lld %12.3f\n", alg.c_str(), static_cast<long long>(triangles),
                    sq.stats.seconds * 1e3);
    }

    std::printf("\nmulti-source BFS (8 sources):\n");
    std::printf("%-10s %8s %14s %12s\n", "engine", "levels", "products", "SpGEMM ms");
    std::vector<index_t> sources;
    for (index_t s = 0; s < 8; ++s) { sources.push_back(s * (g.rows / 8)); }
    for (const auto& alg : bench::algo_names()) {
        sim::Device dev = bench::make_device(8.0);
        const auto r = graph::multi_source_bfs(dev, g, std::span<const index_t>(sources),
                                               engine_for(alg));
        std::printf("%-10s %8d %14lld %12.3f\n", alg.c_str(), r.levels,
                    static_cast<long long>(r.spgemm_products), r.spgemm_seconds * 1e3);
    }
    return 0;
}
