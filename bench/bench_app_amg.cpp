// Application benchmark — AMG setup (the paper's §I motivation).
//
// Builds a smoothed-aggregation hierarchy for a Poisson operator and for a
// FEM-like operator, swapping the SpGEMM engine between the four
// implementations: the whole setup's simulated SpGEMM time is the
// application-level counterpart of Figures 2/3. Expectation: the
// proposal's advantage carries into the triple-product workload with its
// rectangular A*P / R*(AP) shapes.
#include "common.hpp"

#include "matgen/generators.hpp"
#include "solver/amg.hpp"

namespace {

using namespace nsparse;

CsrMatrix<double> poisson2d(index_t n)
{
    CsrMatrix<double> m;
    m.rows = m.cols = n * n;
    m.rpt.assign(to_size(m.rows) + 1, 0);
    const auto at = [n](index_t x, index_t y) { return y * n + x; };
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const auto push = [&](index_t xx, index_t yy, double v) {
                if (xx < 0 || xx >= n || yy < 0 || yy >= n) { return; }
                m.col.push_back(at(xx, yy));
                m.val.push_back(v);
            };
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            m.rpt[to_size(at(x, y)) + 1] = to_index(m.col.size());
        }
    }
    m.validate();
    return m;
}

void run_operator(const char* name, const CsrMatrix<double>& a)
{
    std::printf("%s (n = %d, nnz = %d)\n", name, a.rows, a.nnz());
    std::printf("%-10s %10s %14s %12s %10s\n", "engine", "levels", "products",
                "SpGEMM ms", "GFLOPS");
    double best_baseline = 0.0;
    double proposal = 0.0;
    for (const auto& alg : bench::algo_names()) {
        sim::Device dev = bench::make_device(8.0);
        solver::AmgOptions opt;
        opt.spgemm = [&alg](sim::Device& d, const CsrMatrix<double>& x,
                            const CsrMatrix<double>& y) {
            if (alg == "CUSP") { return baseline::esc_spgemm<double>(d, x, y); }
            if (alg == "cuSPARSE") { return baseline::cusparse_spgemm<double>(d, x, y); }
            if (alg == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(d, x, y); }
            return hash_spgemm<double>(d, x, y);
        };
        const solver::AmgHierarchy amg(dev, a, opt);
        const auto& st = amg.stats();
        const double gf = st.spgemm_seconds > 0
                              ? 2.0 * static_cast<double>(st.total_spgemm_products) /
                                    st.spgemm_seconds / 1e9
                              : 0.0;
        std::printf("%-10s %10d %14lld %12.3f %10.3f\n", alg.c_str(), st.levels,
                    static_cast<long long>(st.total_spgemm_products),
                    st.spgemm_seconds * 1e3, gf);
        if (alg == "PROPOSAL") {
            proposal = gf;
        } else {
            best_baseline = std::max(best_baseline, gf);
        }
    }
    std::printf("speedup vs best baseline: x%.2f\n\n", proposal / best_baseline);
}

}  // namespace

int main()
{
    std::printf("Application benchmark: AMG setup SpGEMM (paper §I motivation)\n\n");
    run_operator("2-D Poisson", poisson2d(192));

    gen::FemParams p;
    p.nodes = 4000;
    p.block_size = 3;
    p.avg_blocks = 9.0;
    p.bandwidth = 20;
    p.seed = 11;
    run_operator("FEM-like elasticity", gen::fem_like(p));
    return 0;
}
