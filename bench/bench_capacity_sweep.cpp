// Capacity sweep — minimum device memory each algorithm needs to finish.
//
// Table III reports "-" where an algorithm ran out of the (scaled) device
// memory; this bench quantifies those entries by binary-searching, per
// algorithm and large-graph dataset, the smallest device capacity at which
// the multiply still completes. The proposal is measured twice: with the
// row-slab fallback disabled (the paper's algorithm, bounded by its true
// peak) and enabled (degrades gracefully, so its floor drops towards the
// resident B matrix plus one row slab of working set).
//
// Runs on an extra-shrunk copy of the large-graph suite (the capacity
// ratios are scale-free, and probes near the slabbed floor multiply into
// hundreds of slab passes): NSPARSE_SWEEP_SHRINK overrides the default 4x.
#include "common.hpp"

namespace {

using namespace nsparse;

struct Contender {
    const char* label;
    const char* algorithm;
    bool slab_fallback;
};

constexpr Contender kContenders[] = {
    {"CUSP", "CUSP", false},
    {"cuSPARSE", "cuSPARSE", false},
    {"BHSPARSE", "BHSPARSE", false},
    {"PROP/strict", "PROPOSAL", false},
    {"PROP/slab", "PROPOSAL", true},
};

double sweep_shrink()
{
    const char* s = std::getenv("NSPARSE_SWEEP_SHRINK");
    if (s == nullptr) { return 4.0; }
    const double v = std::atof(s);
    return v > 0.0 ? v : 4.0;
}

bool completes(const Contender& c, const CsrMatrix<double>& a, double scale,
               std::size_t capacity)
{
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = capacity;
    sim::Device dev(spec, bench::scaled_cost(scale));
    core::Options opt;
    opt.slab_fallback = c.slab_fallback;
    try {
        return bench::run_algorithm<double>(c.algorithm, dev, a, opt).has_value();
    } catch (const KernelFault& f) {
        // A kernel fault at reduced capacity is a bug, not a legitimate
        // "needs more memory" signal — it must never masquerade as one.
        std::fprintf(stderr, "FATAL: %s faulted (not OOM) at capacity %zu: %s\n",
                     c.label, capacity, f.what());
        throw;
    }
}

/// Smallest capacity in [0, hi] at which the run completes, to a
/// granularity of hi/16 (hi is known to suffice).
std::size_t min_capacity(const Contender& c, const CsrMatrix<double>& a, double scale,
                         std::size_t hi)
{
    const std::size_t granularity = std::max<std::size_t>(hi / 16, 4096);
    std::size_t lo = 0;  // known-failing (a zero-capacity device fits nothing)
    while (hi - lo > granularity) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (completes(c, a, scale, mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

}  // namespace

int main()
{
    const double shrink = sweep_shrink();
    std::printf("Capacity sweep: minimum device memory to complete C = A^2 [MB, simulated "
                "P100, double, suite shrunk %.0fx]\n", shrink);
    std::printf("(quantifies Table III's \"-\" entries; PROP/slab = row-slab OOM fallback "
                "enabled)\n\n");
    std::printf("%-14s", "Matrix");
    for (const auto& c : kContenders) { std::printf(" %12s", c.label); }
    std::printf("   %s\n", "slab saving vs strict");
    std::fflush(stdout);

    for (const auto& spec : gen::dataset_suite()) {
        if (!spec.large_graph) { continue; }
        const auto a = convert_values<double>(gen::make_dataset(spec.name, shrink));
        const double scale = gen::effective_scale(spec.name) * shrink;
        std::printf("%-14s", spec.name.c_str());
        std::fflush(stdout);

        double strict_floor = 0.0;
        double slab_floor = 0.0;
        for (const auto& c : kContenders) {
            // Unconstrained run gives the binary search a completing upper
            // bound and the peak to start from.
            sim::Device probe = bench::make_device(scale);
            core::Options opt;
            opt.slab_fallback = c.slab_fallback;
            const auto stats = bench::run_algorithm<double>(c.algorithm, probe, a, opt);
            if (!stats) {
                std::printf(" %12s", "-");
                std::fflush(stdout);
                continue;
            }
            const std::size_t floor = min_capacity(c, a, scale, stats->peak_bytes);
            const double mb = static_cast<double>(floor) / (1024.0 * 1024.0);
            std::printf(" %12.2f", mb);
            std::fflush(stdout);
            if (std::string(c.label) == "PROP/strict") { strict_floor = mb; }
            if (std::string(c.label) == "PROP/slab") { slab_floor = mb; }
        }
        if (strict_floor > 0.0 && slab_floor > 0.0) {
            std::printf("   -%.1f%%", (1.0 - slab_floor / strict_floor) * 100.0);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\npaper: Table III prints \"-\" for CUSP and BHSPARSE on cage15 and wb-edu;\n"
                "       the sweep shows how much capacity each method would have needed,\n"
                "       and how far the slab fallback pushes the proposal's floor below\n"
                "       its unchunked peak.\n");
    return 0;
}
