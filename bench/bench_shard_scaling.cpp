// Sharded-execution benchmark (core::spgemm_sharded): what does the
// shard layer cost when nothing goes wrong, and how does the simulated
// makespan scale as row shards spread over more devices?
//
//   1. Fault-free overhead — a single-shard, single-device sharded run
//      versus direct hash_spgemm on a bare device. The shard layer is
//      host-side planning plus a merge and must not add simulated time:
//      the gate is < 3% overhead in the paper's simulated-seconds metric.
//
//   2. Device scaling — a fixed 16-shard decomposition of the same
//      product over 1/2/4/8 devices, reporting the multi-device
//      makespan, the total device-seconds (the shard-grain overhead:
//      every shard re-uploads B and pays the per-attempt fixed costs)
//      and the makespan speedup over one device.
//
// Every run is asserted byte-identical to the single-device reference
// and the whole suite runs twice to assert determinism; emits
// BENCH_shard_scaling.json with determinism_ok.
//
//   bench_shard_scaling [--smoke] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/spgemm.hpp"
#include "core/spgemm_sharded.hpp"
#include "matgen/generators.hpp"

namespace {

using namespace nsparse;

struct ScalingResult {
    int devices = 0;
    int shards = 0;
    double makespan_seconds = 0.0;
    double total_device_seconds = 0.0;
    double wall_seconds = 0.0;
    bool ok = false;
};

bool bytes_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want)
{
    return got.rpt == want.rpt && got.col == want.col && got.val == want.val;
}

std::vector<ScalingResult> run_scaling_suite(const CsrMatrix<double>& a,
                                             const CsrMatrix<double>& b, int shards,
                                             const CsrMatrix<double>& want)
{
    std::vector<ScalingResult> out;
    for (const int devices : {1, 2, 4, 8}) {
        core::ShardOptions sopt;
        sopt.devices = devices;
        // Fixed decomposition, varying device count: the same shards
        // spread over more devices, so the makespan curve isolates the
        // multi-device speedup from the shard-grain overhead.
        sopt.shards = shards;
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = core::spgemm_sharded<double>(a, b, sopt);
        ScalingResult r;
        r.devices = devices;
        r.shards = res.sharded.shards;
        r.makespan_seconds = res.sharded.makespan_seconds;
        r.total_device_seconds = res.stats.seconds;
        r.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        r.ok = res.ok() && !res.escalated_64bit && bytes_identical(res.matrix, want);
        out.push_back(r);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_shard_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }

    const index_t n = smoke ? 200 : 600;
    const int repeats = smoke ? 4 : 12;
    const auto a = gen::uniform_random(n, n, 8, 3);

    CsrMatrix<double> want;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        want = hash_spgemm<double>(dev, a, a).matrix;
    }
    std::printf("shard-scaling: %d x %d, %d repeat(s)%s\n\n", n, n, repeats,
                smoke ? " [smoke]" : "");

    // ---- 1. fault-free shard-layer overhead -----------------------------
    bool ok = true;
    double direct_sim = 0.0;
    double direct_wall = 0.0;
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < repeats; ++r) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = hash_spgemm<double>(dev, a, a);
            direct_sim += out.stats.seconds;
            ok = ok && bytes_identical(out.matrix, want);
        }
        direct_wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    double sharded_sim = 0.0;
    double sharded_wall = 0.0;
    {
        core::ShardOptions sopt;
        sopt.devices = 1;
        sopt.shards = 1;
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < repeats; ++r) {
            const auto res = core::spgemm_sharded<double>(a, a, sopt);
            sharded_sim += res.stats.seconds;
            ok = ok && res.ok() && bytes_identical(res.matrix, want);
        }
        sharded_wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    const double overhead_pct =
        direct_sim > 0.0 ? (sharded_sim - direct_sim) / direct_sim * 100.0 : 0.0;
    std::printf("%-28s %16s %12s\n", "", "simulated [s]", "wall [s]");
    std::printf("%-28s %16.6f %12.3f\n", "direct hash_spgemm", direct_sim, direct_wall);
    std::printf("%-28s %16.6f %12.3f\n", "sharded (1 shard, 1 dev)", sharded_sim,
                sharded_wall);
    std::printf("shard-layer overhead: %+.4f%% simulated (gate: < 3%%)\n\n", overhead_pct);
    if (overhead_pct >= 3.0) {
        std::fprintf(stderr, "FAIL: shard-layer overhead %.4f%% >= 3%%\n", overhead_pct);
        ok = false;
    }

    // ---- 2. device scaling ----------------------------------------------
    const int shards = 16;
    const auto scaling = run_scaling_suite(a, a, shards, want);
    const auto scaling_again = run_scaling_suite(a, a, shards, want);
    bool determinism_ok = scaling.size() == scaling_again.size();
    const double base =
        scaling.empty() ? 0.0 : scaling.front().makespan_seconds;
    std::printf("%8s %8s %16s %18s %10s\n", "devices", "shards", "makespan [s]",
                "device-total [s]", "speedup");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const auto& r = scaling[i];
        if (!r.ok) {
            std::fprintf(stderr, "FAIL: %d-device run is not byte-identical\n", r.devices);
            ok = false;
        }
        determinism_ok = determinism_ok && i < scaling_again.size() &&
                         scaling_again[i].makespan_seconds == r.makespan_seconds &&
                         scaling_again[i].total_device_seconds == r.total_device_seconds &&
                         scaling_again[i].shards == r.shards && scaling_again[i].ok == r.ok;
        std::printf("%8d %8d %16.6f %18.6f %9.2fx\n", r.devices, r.shards,
                    r.makespan_seconds, r.total_device_seconds,
                    r.makespan_seconds > 0.0 ? base / r.makespan_seconds : 0.0);
    }
    if (!determinism_ok) {
        std::fprintf(stderr, "FAIL: scaling suite is not deterministic across reruns\n");
        ok = false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"shard_scaling\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "  \"rows\": %d,\n  \"repeats\": %d,\n", n, repeats);
    std::fprintf(f, "  \"determinism_ok\": %s,\n", (ok && determinism_ok) ? "true" : "false");
    std::fprintf(f, "  \"direct_simulated_seconds\": %.9f,\n", direct_sim);
    std::fprintf(f, "  \"sharded_simulated_seconds\": %.9f,\n", sharded_sim);
    std::fprintf(f, "  \"shard_overhead_pct\": %.6f,\n", overhead_pct);
    std::fprintf(f, "  \"scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const auto& r = scaling[i];
        std::fprintf(f,
                     "    {\"devices\": %d, \"shards\": %d, \"makespan_seconds\": %.9f, "
                     "\"device_total_seconds\": %.9f, \"speedup\": %.3f, \"ok\": %s}%s\n",
                     r.devices, r.shards, r.makespan_seconds, r.total_device_seconds,
                     r.makespan_seconds > 0.0 ? base / r.makespan_seconds : 0.0,
                     r.ok ? "true" : "false", i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "shard-scaling FAILED\n");
        return 1;
    }
    return 0;
}
