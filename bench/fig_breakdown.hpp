// Shared implementation of the Figure 5/6 phase-breakdown benchmarks.
#pragma once

#include "common.hpp"

namespace nsparse::bench {

template <ValueType T>
void run_breakdown()
{
    std::printf("%-18s %-9s %8s %8s %8s %8s %8s\n", "Matrix", "library", "setup", "count",
                "calc", "malloc", "total");
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);

        sim::Device d1 = make_device(scale);
        const auto cusp = run_algorithm<T>("cuSPARSE", d1, a);
        sim::Device d2 = make_device(scale);
        const auto prop = run_algorithm<T>("PROPOSAL", d2, a);
        if (!cusp || !prop) { continue; }

        const double norm = cusp->seconds;  // cuSPARSE total = 1
        const auto row = [&](const char* lib, const SpgemmStats& s) {
            std::printf("%-18s %-9s %8.3f %8.3f %8.3f %8.3f %8.3f\n", "", lib,
                        s.setup_seconds / norm, s.count_seconds / norm, s.calc_seconds / norm,
                        s.malloc_seconds / norm, s.seconds / norm);
        };
        std::printf("%-18s\n", spec.name.c_str());
        row("cuSPARSE", *cusp);
        row("PROPOSAL", *prop);
    }
    std::printf("\npaper expectations: proposal reduces mainly 'calc'; 'setup' negligible;\n"
                "cudaMalloc considerable on Pascal, dominant for Epidemiology.\n");
}

}  // namespace nsparse::bench
