// Ablation — partial-warp width sweep (§III-B preliminary evaluation).
//
// The paper evaluated 1/2/4/8/16 threads per row and found "4 threads per
// row stably shows best performance". Swept on the short-row matrices
// where the PWARP kernel dominates.
#include "common.hpp"

int main()
{
    using namespace nsparse;
    std::printf("Ablation: PWARP width sweep (paper: width 4 is stably best)\n\n");
    std::printf("%-18s %10s %10s %10s %10s %10s   [GFLOPS, double]\n", "Matrix", "pw=1",
                "pw=2", "pw=4", "pw=8", "pw=16");
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph || spec.high_throughput) { continue; }
        const auto a = bench::load_dataset<double>(spec.name);
        const double scale = gen::effective_scale(spec.name);
        std::printf("%-18s", spec.name.c_str());
        double best = 0.0;
        int best_pw = 0;
        for (const int pw : {1, 2, 4, 8, 16}) {
            core::Options opt;
            opt.pwarp_width = pw;
            sim::Device dev = bench::make_device(scale);
            const auto s = bench::run_algorithm<double>("PROPOSAL", dev, a, opt);
            const double gf = s ? s->gflops() : 0.0;
            std::printf(" %10.3f", gf);
            if (gf > best) {
                best = gf;
                best_pw = pw;
            }
        }
        std::printf("   best: pw=%d\n", best_pw);
    }
    return 0;
}
