// Recovery-overhead benchmark of the session resilience layer
// (nsparse::Session): what does the front end cost when nothing goes
// wrong, and what does each recovery-ladder rung cost when it does?
//
//   1. Zero-fault overhead — the same request sequence through the Session
//      (admission control + ladder wiring armed) versus direct
//      hash_spgemm on a bare device. Admission is host-side arithmetic and
//      must not add simulated time: the gate is < 2% overhead in the
//      paper's simulated-seconds metric (it is 0% by construction — the
//      gate guards that property against regressions).
//
//   2. Time-to-recover vs fault depth — one request per ladder rung
//      (clean / slab fallback / estimated→exact replan / host recourse),
//      reporting the simulated seconds each recovery consumed relative to
//      the clean run.
//
// Every completed request is asserted byte-identical to the clean exact
// result and the whole suite is run twice to assert determinism; emits
// BENCH_recovery.json with determinism_ok.
//
//   bench_recovery_overhead [--smoke] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"

namespace {

using namespace nsparse;

struct DepthResult {
    std::string name;
    double sim_seconds = 0.0;
    RecoveryStage stage = RecoveryStage::kPlanned;
    bool ok = false;
};

/// One recovered request per ladder rung at a deterministic fault depth.
std::vector<DepthResult> run_depth_suite(const CsrMatrix<double>& a, std::size_t tight_capacity,
                                         const CsrMatrix<double>& want)
{
    std::vector<DepthResult> out;
    const auto run = [&](const std::string& name, SessionConfig cfg,
                         bool inject_alloc_fault) {
        Session session(std::move(cfg));
        if (inject_alloc_fault) {
            sim::FaultPlan plan;
            plan.fail_at_alloc = 2;
            session.device().allocator().set_fault_plan(plan);
        }
        const auto res = session.multiply<double>(a, a);
        DepthResult d;
        d.name = name;
        d.sim_seconds = res.out.stats.seconds;
        d.stage = res.final_stage;
        d.ok = res.ok() && res.out.matrix.rpt == want.rpt && res.out.matrix.col == want.col &&
               res.out.matrix.val == want.val;
        out.push_back(std::move(d));
    };

    run("clean", SessionConfig{}, false);

    SessionConfig replan_cfg;
    replan_cfg.options.plan_mode = core::PlanMode::kEstimated;
    run("exact_replan", std::move(replan_cfg), true);

    run("slab_fallback", SessionConfig{}, true);

    SessionConfig host_cfg;
    host_cfg.device_spec.memory_capacity = tight_capacity;
    run("host_recourse", std::move(host_cfg), false);
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_recovery.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }

    const index_t n = smoke ? 200 : 400;
    const int repeats = smoke ? 4 : 16;
    const auto a = gen::uniform_random(n, n, 8, 3);

    CsrMatrix<double> want;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        want = hash_spgemm<double>(dev, a, a).matrix;
    }
    std::printf("recovery-overhead: %d x %d, %d repeat(s)%s\n\n", n, n, repeats,
                smoke ? " [smoke]" : "");

    // ---- 1. zero-fault session overhead ---------------------------------
    // Identical per-request configuration on both paths (no scratch
    // pooling, same options) so any simulated-seconds difference is the
    // session front end itself.
    core::Options opt;
    opt.batch_scratch_reuse = false;

    double direct_sim = 0.0;
    double direct_wall = 0.0;
    bool ok = true;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < repeats; ++r) {
            const auto out = hash_spgemm<double>(dev, a, a, opt);
            direct_sim += out.stats.seconds;
            ok = ok && out.matrix.rpt == want.rpt && out.matrix.col == want.col &&
                 out.matrix.val == want.val;
        }
        direct_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                          .count();
    }

    double session_sim = 0.0;
    double session_wall = 0.0;
    {
        SessionConfig cfg;
        cfg.options = opt;
        Session session(std::move(cfg));
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < repeats; ++r) {
            const auto res = session.multiply<double>(a, a);
            session_sim += res.out.stats.seconds;
            ok = ok && res.ok() && res.out.matrix.rpt == want.rpt &&
                 res.out.matrix.col == want.col && res.out.matrix.val == want.val;
        }
        session_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                           .count();
    }

    const double overhead_pct =
        direct_sim > 0.0 ? (session_sim - direct_sim) / direct_sim * 100.0 : 0.0;
    std::printf("%-24s %16s %12s\n", "", "simulated [s]", "wall [s]");
    std::printf("%-24s %16.6f %12.3f\n", "direct hash_spgemm", direct_sim, direct_wall);
    std::printf("%-24s %16.6f %12.3f\n", "session (zero faults)", session_sim, session_wall);
    std::printf("session overhead: %+.4f%% simulated (gate: < 2%%)\n\n", overhead_pct);
    if (overhead_pct >= 2.0) {
        std::fprintf(stderr, "FAIL: session overhead %.4f%% >= 2%%\n", overhead_pct);
        ok = false;
    }

    // ---- 2. time-to-recover vs fault depth ------------------------------
    const std::size_t tight = a.byte_size() + 256;
    const auto depths = run_depth_suite(a, tight, want);
    const auto depths_again = run_depth_suite(a, tight, want);
    bool determinism_ok = depths.size() == depths_again.size();
    const double clean_s = depths.empty() ? 0.0 : depths.front().sim_seconds;
    std::printf("%-16s %16s %12s %14s\n", "recovery depth", "simulated [s]", "vs clean",
                "final stage");
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const auto& d = depths[i];
        if (!d.ok) {
            std::fprintf(stderr, "FAIL: depth \"%s\" did not recover byte-identically\n",
                         d.name.c_str());
            ok = false;
        }
        determinism_ok = determinism_ok && i < depths_again.size() &&
                         depths_again[i].sim_seconds == d.sim_seconds &&
                         depths_again[i].stage == d.stage && depths_again[i].ok == d.ok;
        std::printf("%-16s %16.6f %11.2fx %14s\n", d.name.c_str(), d.sim_seconds,
                    clean_s > 0.0 ? d.sim_seconds / clean_s : 0.0, to_string(d.stage));
    }
    if (!determinism_ok) {
        std::fprintf(stderr, "FAIL: recovery suite is not deterministic across reruns\n");
        ok = false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"recovery_overhead\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "  \"rows\": %d,\n  \"repeats\": %d,\n", n, repeats);
    std::fprintf(f, "  \"determinism_ok\": %s,\n", (ok && determinism_ok) ? "true" : "false");
    std::fprintf(f, "  \"direct_simulated_seconds\": %.9f,\n", direct_sim);
    std::fprintf(f, "  \"session_simulated_seconds\": %.9f,\n", session_sim);
    std::fprintf(f, "  \"session_overhead_pct\": %.6f,\n", overhead_pct);
    std::fprintf(f, "  \"direct_wall_seconds\": %.6f,\n", direct_wall);
    std::fprintf(f, "  \"session_wall_seconds\": %.6f,\n", session_wall);
    std::fprintf(f, "  \"recovery_depths\": [\n");
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const auto& d = depths[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"simulated_seconds\": %.9f, "
                     "\"vs_clean\": %.3f, \"final_stage\": \"%s\", \"ok\": %s}%s\n",
                     d.name.c_str(), d.sim_seconds,
                     clean_s > 0.0 ? d.sim_seconds / clean_s : 0.0, to_string(d.stage),
                     d.ok ? "true" : "false", i + 1 < depths.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "recovery-overhead FAILED\n");
        return 1;
    }
    return 0;
}
