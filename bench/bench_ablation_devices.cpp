// Extension — the paper's future work (§VI) asks how the algorithm
// carries to other processors. The grouping policy is *derived* from the
// device spec (§III-D), so porting is automatic: this bench prints the
// derived group table and the proposal's performance on Kepler K40,
// Pascal P100 and Volta V100 specs.
//
// Expected shapes: V100's 96 KB shared memory doubles every hash table
// (numeric max 8192), pushing more rows onto the fast shared path; K40's
// fewer/weaker SMs scale throughput down.
#include "common.hpp"

#include "core/grouping.hpp"

namespace {

using namespace nsparse;

void print_policy(const char* name, const sim::DeviceSpec& spec)
{
    const auto num = core::GroupingPolicy::numeric(spec, sizeof(double));
    std::printf("%-6s numeric groups:", name);
    for (const auto& g : num.groups) {
        if (g.assignment == core::Assignment::kPwarpRow) {
            std::printf(" [pwarp<=%d]", g.max_count);
        } else if (g.global_table) {
            std::printf(" [global>%d]", g.min_count - 1);
        } else {
            std::printf(" [%d@%d]", g.table_size, g.block_size);
        }
    }
    std::printf("  (max shared table %d)\n", num.max_shared_table);
}

}  // namespace

int main()
{
    std::printf("Extension: device-spec sweep (paper §VI future work)\n\n");

    const std::pair<const char*, sim::DeviceSpec> devices[] = {
        {"K40", sim::DeviceSpec::kepler_k40()},
        {"P100", sim::DeviceSpec::pascal_p100()},
        {"V100", sim::DeviceSpec::volta_v100()},
    };

    for (const auto& [name, spec] : devices) { print_policy(name, spec); }
    std::printf("\n");

    std::printf("%-18s %10s %10s %10s   [PROPOSAL GFLOPS, double]\n", "Matrix", "K40", "P100",
                "V100");
    for (const auto* ds : {"Protein", "QCD", "Circuit", "Epidemiology"}) {
        const auto a = bench::load_dataset<double>(ds);
        const double scale = gen::effective_scale(ds);
        std::printf("%-18s", ds);
        for (const auto& [name, spec] : devices) {
            sim::Device dev(spec, bench::scaled_cost(scale));
            const auto stats = bench::run_algorithm<double>("PROPOSAL", dev, a);
            std::printf(" %10.3f", stats ? stats->gflops() : 0.0);
        }
        std::printf("\n");
    }
    return 0;
}
