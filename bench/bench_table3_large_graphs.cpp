// Table III — performance of SpGEMM for large graph data [GFLOPS].
//
// cage15 / wb-edu / cit-Patents analogues in single and double precision.
// The device-memory capacity is scaled by the same factor as the matrices,
// so the paper's out-of-memory pattern must reproduce: CUSP and BHSPARSE
// print "-" for cage15 and wb-edu (their working sets grow with the
// intermediate-product count), cuSPARSE runs but poorly on irregular data,
// and the proposal wins with speedups up to ~x11.6 over cuSPARSE.
#include "common.hpp"

namespace {

template <nsparse::ValueType T>
void run_precision(const char* label)
{
    using namespace nsparse;
    std::printf("%s\n%-14s %10s %10s %10s %10s %10s\n", label, "Matrix", "CUSP", "cuSPARSE",
                "BHSPARSE", "PROPOSAL", "Speedup");
    for (const auto& spec : gen::dataset_suite()) {
        if (!spec.large_graph) { continue; }
        const auto a = bench::load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);
        std::printf("%-14s", spec.name.c_str());
        double best_baseline = 0.0;
        double proposal_gf = 0.0;
        for (const auto& alg : bench::algo_names()) {
            sim::Device dev = bench::make_device(scale, /*scale_capacity=*/true);
            const auto stats = bench::run_algorithm<T>(alg, dev, a);
            if (!stats) {
                std::printf(" %10s", "-");
                continue;
            }
            const double gf = stats->gflops();
            std::printf(" %10.3f", gf);
            if (alg == "PROPOSAL") {
                proposal_gf = gf;
            } else {
                best_baseline = std::max(best_baseline, gf);
            }
        }
        // The paper's Table III speedup is vs the best baseline that ran.
        std::printf(" %9s%.1f\n", "x",
                    best_baseline > 0 ? proposal_gf / best_baseline : 0.0);
    }
    std::printf("\n");
}

}  // namespace

int main()
{
    std::printf("Table III: SpGEMM on large graph data [GFLOPS, simulated P100, device memory "
                "scaled with matrices]\n\n");
    run_precision<float>("single");
    run_precision<double>("double");
    std::printf("paper: CUSP/BHSPARSE '-' (OOM) on cage15+wb-edu; speedup vs cuSPARSE:\n"
                "       single x11.5 / x2.3 / x3.8, double x11.6 / x2.2 / x3.7\n");
    return 0;
}
