// Batched-SpGEMM throughput: a 64-product small-matrix suite run through
// core::spgemm_batch (one device, pooled scratch, wave overlap) versus the
// loop-of-singles reference (fresh device + sequential schedule per
// product, baselines/batch_reference.hpp). The paper's simulated-seconds
// metric decides: batching must never be slower, and the win decomposes
// into (a) overlapped wave makespans (§III-B lifted to whole products) and
// (b) pooled scratch skipping repeated cudaMalloc (§IV-C). Batched results
// are asserted byte-identical to the singles and bit-identical across
// executor thread counts; emits BENCH_batch_throughput.json.
//
//   bench_batch [--smoke] [--out FILE]
//
// --smoke (or NSPARSE_BATCH_SMOKE=1) shrinks the suite to 8 products so
// the `perf-smoke` ctest label finishes in seconds.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/batch_reference.hpp"
#include "common.hpp"
#include "core/spgemm_batch.hpp"
#include "matgen/generators.hpp"

namespace {

using nsparse::CsrMatrix;

nsparse::sim::Device make_device() { return nsparse::bench::make_device(1.0); }

bool same_batched_results(const nsparse::core::SpgemmBatchOutput<double>& ref,
                          const nsparse::core::SpgemmBatchOutput<double>& got,
                          const char* what)
{
    if (ref.items.size() != got.items.size() || ref.stats.seconds != got.stats.seconds ||
        ref.stats.makespan_seconds != got.stats.makespan_seconds ||
        ref.stats.peak_bytes != got.stats.peak_bytes ||
        ref.stats.scratch_hits != got.stats.scratch_hits) {
        std::fprintf(stderr, "FAIL: batch roll-up diverged (%s): %.17g vs %.17g s\n", what,
                     ref.stats.seconds, got.stats.seconds);
        return false;
    }
    for (std::size_t k = 0; k < ref.items.size(); ++k) {
        if (!(ref.items[k].out.matrix == got.items[k].out.matrix)) {
            std::fprintf(stderr, "FAIL: product %zu diverged (%s)\n", k, what);
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace nsparse;

    bool smoke = false;
    std::string out_path = "BENCH_batch_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }
    if (const char* env = std::getenv("NSPARSE_BATCH_SMOKE");
        env != nullptr && *env != '\0' && *env != '0') {
        smoke = true;
    }

    // 64 small products (the regime batching targets: each product leaves
    // most of the device idle); mixed sizes exercise the pool's exact-size
    // matching without letting it degenerate to all-hits.
    const int products = smoke ? 8 : 64;
    constexpr index_t kSizes[] = {256, 320, 384, 448};
    std::vector<CsrMatrix<double>> store;
    store.reserve(static_cast<std::size_t>(products));
    std::vector<const CsrMatrix<double>*> as;
    std::vector<const CsrMatrix<double>*> bs;
    for (int k = 0; k < products; ++k) {
        const index_t n = kSizes[static_cast<std::size_t>(k) % 4];
        store.push_back(gen::uniform_random(n, n, 8, 20170814U + static_cast<unsigned>(k)));
    }
    for (const auto& m : store) {
        as.push_back(&m);
        bs.push_back(&m);
    }

    std::printf("batch-throughput: %d products%s\n\n", products, smoke ? " [smoke]" : "");

    // Loop of singles: fresh device per product, no pooling, no overlap.
    const auto singles_t0 = std::chrono::steady_clock::now();
    const auto singles = baseline::batch_reference<double>(make_device, as, bs);
    const std::chrono::duration<double> singles_wall =
        std::chrono::steady_clock::now() - singles_t0;
    if (singles.failed != 0) {
        std::fprintf(stderr, "loop-of-singles failed %d product(s)\n", singles.failed);
        return 1;
    }
    wide_t total_products = 0;
    for (const auto& item : singles.items) {
        total_products += item.out.stats.intermediate_products;
    }
    const double singles_gflops =
        singles.total_seconds > 0.0
            ? 2.0 * static_cast<double>(total_products) / singles.total_seconds / 1e9
            : 0.0;

    // Batched: one device; determinism asserted across executor thread
    // counts (results and roll-up bit-identical — only wall-clock moves).
    bool ok = true;
    core::SpgemmBatchOutput<double> batched;
    double batched_wall = 0.0;
    for (const int threads : {1, 2}) {
        core::Options opt;
        opt.executor_threads = threads;
        sim::Device dev = make_device();
        const auto t0 = std::chrono::steady_clock::now();
        auto got = core::spgemm_batch<double>(dev, as, bs, opt);
        const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - t0;
        if (got.stats.failed != 0) {
            std::fprintf(stderr, "batched run failed %d product(s)\n", got.stats.failed);
            return 1;
        }
        if (threads == 1) {
            batched = std::move(got);
            batched_wall = wall.count();
        } else {
            ok = same_batched_results(batched, got, "threads 2 vs 1") && ok;
        }
    }
    for (std::size_t k = 0; k < as.size(); ++k) {
        if (!(batched.items[k].out.matrix == singles.items[k].out.matrix)) {
            std::fprintf(stderr, "FAIL: batched product %zu differs from its single call\n", k);
            ok = false;
        }
    }

    const double speedup = batched.stats.seconds > 0.0
                               ? singles.total_seconds / batched.stats.seconds
                               : 0.0;
    int busy_streams = 0;
    for (const auto& s : batched.stats.stream_occupancy) {
        if (s.busy_seconds > 0.0) { ++busy_streams; }
    }

    std::printf("%-22s %14s %14s %10s\n", "", "simulated [s]", "gflops", "wall [s]");
    std::printf("%-22s %14.6f %14.3f %10.3f\n", "loop of singles", singles.total_seconds,
                singles_gflops, singles_wall.count());
    std::printf("%-22s %14.6f %14.3f %10.3f\n", "batched", batched.stats.seconds,
                batched.stats.gflops(), batched_wall);
    std::printf("\nspeedup (simulated): %.2fx   waves: %d   busy streams: %d\n", speedup,
                batched.stats.waves, busy_streams);
    std::printf("scratch pool: %llu hit(s), %llu miss(es); malloc %.6f s vs %.6f s singles\n",
                static_cast<unsigned long long>(batched.stats.scratch_hits),
                static_cast<unsigned long long>(batched.stats.scratch_misses),
                batched.stats.malloc_seconds, [&] {
                    double s = 0.0;
                    for (const auto& item : singles.items) {
                        s += item.out.stats.malloc_seconds;
                    }
                    return s;
                }());

    if (speedup < 1.0) {
        std::fprintf(stderr, "FAIL: batched slower than loop of singles (%.3fx)\n", speedup);
        ok = false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"batch_throughput\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "  \"products\": %d,\n  \"determinism_ok\": %s,\n", products,
                 ok ? "true" : "false");
    std::fprintf(f, "  \"singles_simulated_seconds\": %.9f,\n", singles.total_seconds);
    std::fprintf(f, "  \"batched_simulated_seconds\": %.9f,\n", batched.stats.seconds);
    std::fprintf(f, "  \"batched_makespan_seconds\": %.9f,\n", batched.stats.makespan_seconds);
    std::fprintf(f, "  \"speedup_vs_singles\": %.3f,\n", speedup);
    std::fprintf(f, "  \"singles_gflops\": %.3f,\n  \"batched_gflops\": %.3f,\n",
                 singles_gflops, batched.stats.gflops());
    std::fprintf(f, "  \"waves\": %d,\n  \"busy_streams\": %d,\n", batched.stats.waves,
                 busy_streams);
    std::fprintf(f, "  \"scratch_hits\": %llu,\n  \"scratch_misses\": %llu,\n",
                 static_cast<unsigned long long>(batched.stats.scratch_hits),
                 static_cast<unsigned long long>(batched.stats.scratch_misses));
    std::fprintf(f, "  \"batched_wall_seconds\": %.6f,\n  \"singles_wall_seconds\": %.6f\n",
                 batched_wall, singles_wall.count());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "batch-throughput FAILED\n");
        return 1;
    }
    return 0;
}
