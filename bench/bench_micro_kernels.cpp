// Microbenchmarks (google-benchmark) of the primitives the algorithms are
// built from: hash insert/accumulate, reference SpGEMM, generator
// throughput, scheduler overhead. These measure *host* wall-clock of the
// simulation substrate itself (useful when optimising the simulator), not
// simulated GPU time.
#include <benchmark/benchmark.h>

#include "core/hash_table.hpp"
#include "gpusim/scheduler.hpp"
#include "matgen/generators.hpp"
#include "matgen/rng.hpp"
#include "sparse/reference_spgemm.hpp"

namespace {

using namespace nsparse;

void BM_HashInsertKey(benchmark::State& state)
{
    const auto tsize = static_cast<std::size_t>(state.range(0));
    gen::Pcg32 rng(1);
    std::vector<index_t> table(tsize, kEmptySlot);
    std::size_t i = 0;
    for (auto _ : state) {
        if (i++ % (tsize / 2) == 0) { std::fill(table.begin(), table.end(), kEmptySlot); }
        const auto key = to_index(rng.next() & 0xffffffU);
        benchmark::DoNotOptimize(core::hash_insert_key(std::span<index_t>(table), key));
    }
}
BENCHMARK(BM_HashInsertKey)->Arg(256)->Arg(4096);

void BM_HashAccumulate(benchmark::State& state)
{
    std::vector<index_t> keys(4096, kEmptySlot);
    std::vector<double> vals(4096, 0.0);
    gen::Pcg32 rng(2);
    std::size_t i = 0;
    for (auto _ : state) {
        if (i++ % 2048 == 0) { std::fill(keys.begin(), keys.end(), kEmptySlot); }
        const auto key = to_index(rng.next() & 0xffffffU);
        benchmark::DoNotOptimize(core::hash_accumulate(
            std::span<index_t>(keys), std::span<double>(vals), key, 1.0));
    }
}
BENCHMARK(BM_HashAccumulate);

void BM_ReferenceSpgemm(benchmark::State& state)
{
    const auto n = to_index(state.range(0));
    const auto a = gen::uniform_random(n, n, 8, 1);
    for (auto _ : state) { benchmark::DoNotOptimize(reference_spgemm(a, a)); }
    state.SetItemsProcessed(state.iterations() * total_intermediate_products(a, a));
}
BENCHMARK(BM_ReferenceSpgemm)->Arg(256)->Arg(1024);

void BM_GeneratorScaleFree(benchmark::State& state)
{
    gen::ScaleFreeParams p;
    p.rows = to_index(state.range(0));
    p.avg_degree = 4.0;
    p.max_degree = p.rows / 8;
    for (auto _ : state) {
        p.seed++;
        benchmark::DoNotOptimize(gen::scale_free(p));
    }
}
BENCHMARK(BM_GeneratorScaleFree)->Arg(10000);

void BM_SchedulerMakespan(benchmark::State& state)
{
    const auto blocks = to_index(state.range(0));
    sim::KernelRecord k;
    k.name = "bench";
    k.cfg = {blocks, 128, 0};
    k.blocks.assign(to_size(blocks), sim::BlockCost{1e5, 1e3, 0.0});
    const std::vector<sim::KernelRecord> ks{k};
    const auto spec = sim::DeviceSpec::pascal_p100();
    const sim::CostModel cost;
    for (auto _ : state) { benchmark::DoNotOptimize(sim::schedule(ks, spec, cost)); }
    state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_SchedulerMakespan)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
