// Figure 2 — performance of SpGEMM computation in single precision.
//
// (a) the eight High-Throughput matrices, (b) the four Low-Throughput
// matrices; FLOPS = 2 * intermediate products / simulated execution time,
// squaring each matrix, for CUSP (ESC), cuSPARSE-like, BHSPARSE-like and
// the proposal. Paper: proposal best on ALL matrices; speedup vs the best
// existing library up to x4.3.
#include "common.hpp"

int main()
{
    using namespace nsparse;
    std::printf("Figure 2: SpGEMM performance, single precision [GFLOPS, simulated P100]\n\n");
    bench::run_perf_figure<float>("(a) High-Throughput Matrices", true);
    bench::run_perf_figure<float>("(b) Low-Throughput Matrices", false);
    std::printf("summary (single precision):\n");
    bench::print_speedup_summary<float>();
    return 0;
}
