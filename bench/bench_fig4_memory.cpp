// Figure 4 — maximum memory usage in SpGEMM computation, relative to
// cuSPARSE (single and double precision).
//
// Peak simulated-device bytes during the multiply, including the input and
// output matrices. Paper: the proposal uses the least memory for every
// matrix (mean reduction 14.7% single / 10.9% double vs cuSPARSE);
// CUSP/BHSPARSE exceed cuSPARSE, by far on matrices with a high
// intermediate-product count (up to 67.7% reduction vs BHSPARSE).
#include "common.hpp"

namespace {

template <nsparse::ValueType T>
void run_precision(const char* label)
{
    using namespace nsparse;
    std::printf("(%s) ratio of peak memory usage to cuSPARSE\n", label);
    std::printf("%-18s %10s %10s %10s %10s\n", "Matrix", "CUSP", "cuSPARSE", "BHSPARSE",
                "PROPOSAL");
    double sum_log_ratio = 0.0;
    double min_vs_bh = 1e30;
    int n = 0;
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = bench::load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);

        std::map<std::string, double> peak;
        for (const auto& alg : bench::algo_names()) {
            sim::Device dev = bench::make_device(scale);
            const auto stats = bench::run_algorithm<T>(alg, dev, a);
            peak[alg] = stats ? static_cast<double>(stats->peak_bytes) : 0.0;
        }
        const double base = peak["cuSPARSE"];
        std::printf("%-18s", spec.name.c_str());
        for (const auto& alg : bench::algo_names()) {
            std::printf(" %10.3f", peak[alg] / base);
        }
        std::printf("\n");
        sum_log_ratio += std::log(peak["PROPOSAL"] / base);
        if (peak["BHSPARSE"] > 0) {
            min_vs_bh = std::min(min_vs_bh, peak["PROPOSAL"] / peak["BHSPARSE"]);
        }
        ++n;
    }
    const double mean_ratio = std::exp(sum_log_ratio / n);
    std::printf("mean proposal/cuSPARSE ratio: %.3f -> %.1f%% reduction (paper: %s)\n",
                mean_ratio, (1.0 - mean_ratio) * 100.0,
                std::string(label) == "single" ? "14.7%" : "10.9%");
    std::printf("max reduction vs BHSPARSE: %.1f%% (paper: 67.7%% on maximum)\n\n",
                (1.0 - min_vs_bh) * 100.0);
}

}  // namespace

int main()
{
    std::printf("Figure 4: maximum memory usage relative to cuSPARSE [simulated P100]\n\n");
    run_precision<float>("single");
    run_precision<double>("double");
    return 0;
}
