// Figure 3 — performance of SpGEMM computation in double precision.
// Same layout as Figure 2; the paper reports the trend mirroring single
// precision with speedups up to x4.4 vs the best existing library.
#include "common.hpp"

int main()
{
    using namespace nsparse;
    std::printf("Figure 3: SpGEMM performance, double precision [GFLOPS, simulated P100]\n\n");
    bench::run_perf_figure<double>("(a) High-Throughput Matrices", true);
    bench::run_perf_figure<double>("(b) Low-Throughput Matrices", false);
    std::printf("summary (double precision):\n");
    bench::print_speedup_summary<double>();
    return 0;
}
