// Shared benchmark harness: dataset loading at scale, device construction,
// the algorithm registry, and table printing in the paper's layout.
//
// Scaling protocol (see EXPERIMENTS.md): matrices are generated at
// 1/default_scale of the paper's sizes so a single CPU core can execute
// the simulation. Host-side constant costs (kernel launch, cudaMalloc
// base) are divided by the same factor so their *relative* weight against
// kernel time matches the full-size run; the Table III experiment also
// divides the device-memory capacity by the scale so the paper's
// out-of-memory behaviour reproduces.
#pragma once

#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/dataset_suite.hpp"
#include "sparse/io_matrix_market.hpp"

namespace nsparse::bench {

inline const std::vector<std::string>& algo_names()
{
    static const std::vector<std::string> names = {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"};
    return names;
}

/// Executor thread count for every benchmark run. NSPARSE_EXECUTOR_THREADS
/// overrides (1 = the seed's sequential behaviour); default 0 lets the
/// device use all hardware threads. Simulated results are identical either
/// way — only host wall-clock changes. Non-numeric values are rejected
/// loudly (atoi used to fold them silently into 0 = "all threads");
/// negative/huge values are clamped with a warning by
/// BlockExecutor::resolve_threads.
inline int executor_threads_from_env()
{
    const char* s = std::getenv("NSPARSE_EXECUTOR_THREADS");
    if (s == nullptr || *s == '\0') { return 0; }
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0') {
        std::fprintf(stderr,
                     "nsparse: ignoring non-numeric NSPARSE_EXECUTOR_THREADS=\"%s\" "
                     "(using all hardware threads)\n",
                     s);
        return 0;
    }
    if (v > INT_MAX) { return INT_MAX; }  // resolve_threads clamps + warns
    if (v < INT_MIN) { return -1; }
    return static_cast<int>(v);
}

/// Host-side constant costs scaled with the dataset (see header comment).
inline sim::CostModel scaled_cost(double scale)
{
    sim::CostModel m;
    m.launch_overhead_us /= scale;
    m.malloc_base_us /= scale;
    m.free_base_us /= scale;
    return m;
}

/// Device for a dataset at `scale`; optionally scale the memory capacity
/// (Table III) so working-set : capacity matches the paper.
inline sim::Device make_device(double scale, bool scale_capacity = false)
{
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    if (scale_capacity) {
        // The CUDA context and ECC metadata reserve ~5% of physical memory,
        // so the usable capacity is below the nameplate 16 GB.
        spec.memory_capacity = static_cast<std::size_t>(
            0.95 * static_cast<double>(spec.memory_capacity) / scale);
    }
    return sim::Device(spec, scaled_cost(scale));
}

/// One algorithm run (squaring `a`); empty optional = device out of memory
/// (the "-" entries of Table III). A KernelFault is *not* an OOM — it means
/// a kernel produced a wrong/impossible result — so it propagates to the
/// caller instead of being folded into the "-" entries.
template <ValueType T>
std::optional<SpgemmStats> run_algorithm(const std::string& name, sim::Device& dev,
                                         const CsrMatrix<T>& a,
                                         const core::Options& opt = {})
{
    try {
        core::Options o = opt;
        if (o.executor_threads == 0) { o.executor_threads = executor_threads_from_env(); }
        const int nt = o.executor_threads;
        const bool val = o.validate_inputs;
        if (name == "CUSP") { return baseline::esc_spgemm<T>(dev, a, a, nt, val).stats; }
        if (name == "cuSPARSE") {
            return baseline::cusparse_spgemm<T>(dev, a, a, nt, val).stats;
        }
        if (name == "BHSPARSE") {
            return baseline::bhsparse_spgemm<T>(dev, a, a, nt, val).stats;
        }
        if (name == "PROPOSAL") { return hash_spgemm<T>(dev, a, a, o).stats; }
        throw PreconditionError("unknown algorithm: " + name);
    } catch (const DeviceOutOfMemory&) {
        return std::nullopt;
    }
}

template <ValueType T>
CsrMatrix<T> load_dataset(const std::string& name)
{
    return convert_values<T>(gen::make_dataset(name));
}

/// GFLOPS table for one precision over a dataset list (Figure 2/3 layout).
template <ValueType T>
void run_perf_figure(const char* title, bool high_throughput)
{
    std::printf("%s\n", title);
    std::printf("%-18s %10s %10s %10s %10s   %s\n", "Matrix", "CUSP", "cuSPARSE", "BHSPARSE",
                "PROPOSAL", "best-baseline speedup");

    double min_speedup = 1e30;
    double max_speedup = 0.0;
    double sum_log_speedup = 0.0;
    int n = 0;

    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph || spec.high_throughput != high_throughput) { continue; }
        const auto a = load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);

        std::printf("%-18s", spec.name.c_str());
        double best_baseline = 0.0;
        double proposal = 0.0;
        for (const auto& alg : algo_names()) {
            sim::Device dev = make_device(scale);
            const auto stats = run_algorithm<T>(alg, dev, a);
            if (!stats) {
                std::printf(" %10s", "-");
                continue;
            }
            const double gf = stats->gflops();
            std::printf(" %10.3f", gf);
            if (alg == "PROPOSAL") {
                proposal = gf;
            } else {
                best_baseline = std::max(best_baseline, gf);
            }
        }
        const double speedup = best_baseline > 0.0 ? proposal / best_baseline : 0.0;
        std::printf("   x%.2f\n", speedup);
        min_speedup = std::min(min_speedup, speedup);
        max_speedup = std::max(max_speedup, speedup);
        sum_log_speedup += std::log(speedup);
        ++n;
    }
    if (n > 0) {
        std::printf("speedup vs best baseline: min x%.2f, max x%.2f, geomean x%.2f\n\n",
                    min_speedup, max_speedup, std::exp(sum_log_speedup / n));
    }
}

/// Speedup summary vs each named baseline (the paper quotes these).
template <ValueType T>
void print_speedup_summary()
{
    for (const auto& base : {"CUSP", "cuSPARSE", "BHSPARSE"}) {
        double max_s = 0.0;
        double sum_log = 0.0;
        int n = 0;
        for (const auto& spec : gen::dataset_suite()) {
            if (spec.large_graph) { continue; }
            const auto a = load_dataset<T>(spec.name);
            const double scale = gen::effective_scale(spec.name);
            sim::Device d1 = make_device(scale);
            sim::Device d2 = make_device(scale);
            const auto sb = run_algorithm<T>(base, d1, a);
            const auto sp = run_algorithm<T>("PROPOSAL", d2, a);
            if (!sb || !sp) { continue; }
            const double s = sp->gflops() / sb->gflops();
            max_s = std::max(max_s, s);
            sum_log += std::log(s);
            ++n;
        }
        std::printf("vs %-9s max x%.1f, geomean x%.1f (paper: ", base, max_s,
                    std::exp(sum_log / std::max(n, 1)));
        if (std::string(base) == "CUSP") {
            std::printf("max x32.3/x28.7, avg x15.7/x15.1 single/double)\n");
        } else if (std::string(base) == "cuSPARSE") {
            std::printf("max x8.1/x8.7, avg x3.2/x3.3 single/double)\n");
        } else {
            std::printf("max x4.3/x4.4, avg x2.3/x2.2 single/double)\n");
        }
    }
}

}  // namespace nsparse::bench
