// Ablation — multi-stream concurrent group execution (§IV-C ¶1).
//
// The paper reports x1.3 on 'Circuit' from launching the per-group kernels
// on separate CUDA streams: some groups hold fewer than 10 rows, and
// without streams their tiny kernels serialize and leave the GPU idle.
#include "common.hpp"

namespace {

template <nsparse::ValueType T>
void run_precision(const char* label)
{
    using namespace nsparse;
    std::printf("(%s)\n%-18s %12s %12s %10s\n", label, "Matrix", "no-streams", "streams",
                "speedup");
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = bench::load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);

        core::Options without;
        without.use_streams = false;
        core::Options with;
        with.use_streams = true;

        sim::Device d1 = bench::make_device(scale);
        sim::Device d2 = bench::make_device(scale);
        const auto s1 = bench::run_algorithm<T>("PROPOSAL", d1, a, without);
        const auto s2 = bench::run_algorithm<T>("PROPOSAL", d2, a, with);
        if (!s1 || !s2) { continue; }
        std::printf("%-18s %12.3f %12.3f %9.2fx\n", spec.name.c_str(), s1->gflops(),
                    s2->gflops(), s2->gflops() / s1->gflops());
    }
    std::printf("\n");
}

}  // namespace

int main()
{
    std::printf("Ablation: CUDA-stream concurrent group execution "
                "(paper: x1.3 on Circuit)\n\n");
    run_precision<float>("single");
    run_precision<double>("double");
    return 0;
}
