// Ablation — PWARP/ROW assignment for short rows (§IV-C ¶2).
//
// The paper reports x3.1 on 'Epidemiology' (nnz/row = 4): without
// PWARP/ROW every short row occupies a whole 64-thread block with a
// 512/256-entry table, wasting threads and shared memory.
#include "common.hpp"

namespace {

template <nsparse::ValueType T>
void run_precision(const char* label)
{
    using namespace nsparse;
    std::printf("(%s)\n%-18s %12s %12s %10s\n", label, "Matrix", "no-pwarp", "pwarp",
                "speedup");
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = bench::load_dataset<T>(spec.name);
        const double scale = gen::effective_scale(spec.name);

        core::Options without;
        without.use_pwarp = false;
        core::Options with;
        with.use_pwarp = true;

        sim::Device d1 = bench::make_device(scale);
        sim::Device d2 = bench::make_device(scale);
        const auto s1 = bench::run_algorithm<T>("PROPOSAL", d1, a, without);
        const auto s2 = bench::run_algorithm<T>("PROPOSAL", d2, a, with);
        if (!s1 || !s2) { continue; }
        std::printf("%-18s %12.3f %12.3f %9.2fx\n", spec.name.c_str(), s1->gflops(),
                    s2->gflops(), s2->gflops() / s1->gflops());
    }
    std::printf("\n");
}

}  // namespace

int main()
{
    std::printf("Ablation: PWARP/ROW for short rows (paper: x3.1 on Epidemiology)\n\n");
    run_precision<float>("single");
    run_precision<double>("double");
    return 0;
}
