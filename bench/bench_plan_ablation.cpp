// Planning-mode ablation: exact vs estimated vs hybrid symbolic planning
// (core/estimator.hpp) over a uniform suite, two high-collision R-MAT
// suites, and a hub-heavy R-MAT reported honestly as the regime where the
// exact pass's cheap max-shared-table group-0 attempt is hard to beat.
//
// The metric split mirrors the trace phases: "busy" simulated seconds
// (setup + count + estimate + calc — the cycles the planning mode actually
// moves) versus total simulated seconds (adds the cudaMalloc-modelled
// allocation constants; the estimated path pays ~2 extra pad-storage
// allocations). Output must be byte-identical across all three modes, and
// at the default confidence every mispredicted row must be absorbed by the
// group-0 retry with zero host-recourse rows.
//
//   bench_plan_ablation [--smoke] [--out FILE]
//
// --smoke (or NSPARSE_PLAN_SMOKE=1) shrinks the suites so the `perf-smoke`
// ctest label finishes in seconds; the busy-cycle win gates only apply to
// the full-size run (the shrunken matrices sit in a different regime).
// Emits BENCH_plan_ablation.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"

namespace {

using nsparse::CsrMatrix;
using nsparse::SpgemmStats;

struct Suite {
    std::string name;
    CsrMatrix<double> a;
    bool expect_busy_win;  ///< gate: estimated busy < exact busy (full run only)
};

struct ModeResult {
    SpgemmStats stats;
    double busy = 0.0;
};

double busy_seconds(const SpgemmStats& s)
{
    return s.setup_seconds + s.count_seconds + s.estimate_seconds + s.calc_seconds;
}

std::vector<Suite> build_suites(bool smoke)
{
    using namespace nsparse;
    std::vector<Suite> suites;
    // Uniform: collision-light rows where the sampled model predicts nnz
    // tightly and the skipped exact count is pure savings.
    suites.push_back({"uniform", gen::uniform_random(smoke ? 3000 : 20000,
                                                     smoke ? 3000 : 20000, 16, 7),
                      true});
    {
        // High-collision R-MAT, hub rows capped: dense enough that the
        // exact count pays real probe chains, capped enough that the
        // estimator's capacity padding stays cheap.
        gen::RmatParams p;
        p.scale = smoke ? 10 : 12;
        p.edges_per_vertex = 32.0;
        p.max_degree = 1024;
        suites.push_back({"rmat-ep32-cap1024", gen::rmat(p), true});
    }
    {
        gen::RmatParams p;
        p.scale = smoke ? 9 : 11;
        p.edges_per_vertex = 48.0;
        suites.push_back({"rmat-ep48", gen::rmat(p), true});
    }
    {
        // Hub-heavy tail, uncapped: the regime that favours exact planning
        // (its group-0 shared-table attempt is cheap, the estimator's
        // padded hub tables are not). Reported, not gated.
        gen::RmatParams p;
        p.scale = smoke ? 11 : 14;
        p.edges_per_vertex = 8.0;
        suites.push_back({"rmat-hub-heavy", gen::rmat(p), false});
    }
    return suites;
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace nsparse;

    bool smoke = false;
    std::string out_path = "BENCH_plan_ablation.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }
    if (const char* env = std::getenv("NSPARSE_PLAN_SMOKE");
        env != nullptr && *env != '\0' && *env != '0') {
        smoke = true;
    }

    const auto suites = build_suites(smoke);
    constexpr const char* kModes[] = {"exact", "estimated", "hybrid"};
    bool ok = true;

    std::printf("plan-ablation: %zu suites%s\n\n", suites.size(), smoke ? " [smoke]" : "");
    std::printf("%-18s %-10s %12s %12s %8s %9s %7s\n", "suite", "mode", "busy [s]",
                "total [s]", "mis/est", "retries", "host");

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"plan_ablation\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "  \"suites\": [\n");

    for (std::size_t si = 0; si < suites.size(); ++si) {
        const Suite& suite = suites[si];
        ModeResult res[3];
        CsrMatrix<double> exact_c;
        bool bytes_ok = true;
        for (int mi = 0; mi < 3; ++mi) {
            core::Options opt;
            opt.plan_mode = mi == 0   ? core::PlanMode::kExact
                            : mi == 1 ? core::PlanMode::kEstimated
                                      : core::PlanMode::kHybrid;
            sim::Device dev = bench::make_device(1.0);
            auto out = hash_spgemm<double>(dev, suite.a, suite.a, opt);
            res[mi].stats = out.stats;
            res[mi].busy = busy_seconds(out.stats);
            if (mi == 0) {
                exact_c = std::move(out.matrix);
            } else if (!(out.matrix == exact_c)) {
                std::fprintf(stderr, "FAIL: %s/%s output differs from exact planning\n",
                             suite.name.c_str(), kModes[mi]);
                bytes_ok = false;
                ok = false;
            }
            if (out.stats.host_fallback_rows != 0) {
                std::fprintf(stderr,
                             "FAIL: %s/%s needed %d host-recourse row(s) — the group-0 "
                             "retry must absorb every misprediction\n",
                             suite.name.c_str(), kModes[mi],
                             out.stats.host_fallback_rows);
                ok = false;
            }
            std::printf("%-18s %-10s %12.6f %12.6f %4d/%-4d %8d %6d\n", suite.name.c_str(),
                        kModes[mi], res[mi].busy, out.stats.seconds,
                        out.stats.mispredicted_rows, out.stats.estimated_rows,
                        out.stats.row_retries, out.stats.host_fallback_rows);
        }
        const double d_est = res[0].busy > 0.0
                                 ? 100.0 * (res[1].busy - res[0].busy) / res[0].busy
                                 : 0.0;
        const double d_hyb = res[0].busy > 0.0
                                 ? 100.0 * (res[2].busy - res[0].busy) / res[0].busy
                                 : 0.0;
        std::printf("%-18s busy delta vs exact: estimated %+0.1f%%, hybrid %+0.1f%%\n\n",
                    "", d_est, d_hyb);
        if (!smoke && suite.expect_busy_win) {
            for (int mi = 1; mi < 3; ++mi) {
                if (res[mi].busy >= res[0].busy) {
                    std::fprintf(stderr,
                                 "FAIL: %s planning did not reduce busy cycles on %s "
                                 "(%.6f s vs %.6f s exact)\n",
                                 kModes[mi], suite.name.c_str(), res[mi].busy,
                                 res[0].busy);
                    ok = false;
                }
            }
        }

        std::fprintf(f, "    {\n      \"suite\": \"%s\",\n", suite.name.c_str());
        std::fprintf(f, "      \"rows\": %d,\n      \"nnz\": %lld,\n", suite.a.rows,
                     static_cast<long long>(suite.a.nnz()));
        std::fprintf(f, "      \"gated_busy_win\": %s,\n      \"bytes_identical\": %s,\n",
                     suite.expect_busy_win ? "true" : "false", bytes_ok ? "true" : "false");
        for (int mi = 0; mi < 3; ++mi) {
            const SpgemmStats& s = res[mi].stats;
            std::fprintf(f, "      \"%s\": {\n", kModes[mi]);
            std::fprintf(f, "        \"busy_seconds\": %.9f,\n", res[mi].busy);
            std::fprintf(f, "        \"simulated_seconds\": %.9f,\n", s.seconds);
            std::fprintf(f, "        \"estimate_seconds\": %.9f,\n", s.estimate_seconds);
            std::fprintf(f, "        \"count_seconds\": %.9f,\n", s.count_seconds);
            std::fprintf(f, "        \"estimated_rows\": %d,\n", s.estimated_rows);
            std::fprintf(f, "        \"mispredicted_rows\": %d,\n", s.mispredicted_rows);
            std::fprintf(f, "        \"mispredict_rate\": %.6f,\n",
                         s.estimated_rows > 0 ? static_cast<double>(s.mispredicted_rows) /
                                                    static_cast<double>(s.estimated_rows)
                                              : 0.0);
            std::fprintf(f, "        \"row_retries\": %d,\n", s.row_retries);
            std::fprintf(f, "        \"host_fallback_rows\": %d,\n", s.host_fallback_rows);
            std::fprintf(f, "        \"symbolic_cycles_saved\": %.1f,\n",
                         s.symbolic_cycles_saved);
            std::fprintf(f, "        \"peak_bytes\": %llu\n      }%s\n",
                         static_cast<unsigned long long>(s.peak_bytes),
                         mi + 1 < 3 ? "," : "");
        }
        std::fprintf(f, "    }%s\n", si + 1 < suites.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"determinism_ok\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "plan-ablation FAILED\n");
        return 1;
    }
    return 0;
}
