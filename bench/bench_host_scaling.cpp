// Host execution-engine scaling: wall-clock of the Figure 2 workload
// (squaring every non-large-graph dataset with the proposal algorithm,
// single precision) as a function of executor threads, on both backends.
//
// The seed version of this bench timed only the simulated backend, so the
// number it labelled "speedup_vs_seq" was simulator overhead — the cost of
// *modelling* kernels faster, not of running them. This version reports
// the two backends separately: the simulated sweep keeps its bit-identity
// contract (same simulated seconds/nnz/peak for every thread count) and
// its wall-clock is labelled as overhead; the native sweep is the real
// measurement (the kernels execute on the worker pool) and is additionally
// checked byte-identical to the simulated output on every dataset. Each
// result carries its per-thread parallel efficiency, and any thread count
// that resolves above the machine's hardware concurrency is flagged in a
// "warnings" array instead of being passed off as a scaling point.
//
//   bench_host_scaling [--smoke] [--gate] [--reps N] [--out FILE]
//
// --smoke (or NSPARSE_HOST_SCALING_SMOKE=1) swaps the fig2 datasets for
// one tiny synthetic matrix so the binary finishes in seconds. --gate
// turns the regression contract into the exit code: native must beat the
// simulated backend's wall-clock by >= 3x at every thread count, and the
// native thread curve must not regress (within a 15% noise band) for
// counts up to the hardware concurrency. The `perf_smoke_native` ctest
// runs --smoke --gate in tier-1.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/backend.hpp"
#include "gpusim/executor.hpp"
#include "matgen/generators.hpp"

namespace {

using nsparse::CsrMatrix;
using nsparse::SpgemmStats;

struct Workload {
    std::string name;
    CsrMatrix<float> matrix;
    double scale = 1.0;
};

struct RunResult {
    nsparse::core::BackendKind backend = nsparse::core::BackendKind::kSimulated;
    int threads = 0;          ///< requested executor threads (0 = hw)
    int resolved_threads = 0; ///< what the request resolved to
    double wall_seconds = 0.0;
    double simulated_seconds = 0.0;
};

/// One full sweep of the workload on one backend/thread setting, repeated
/// `reps` times with the best (minimum) wall-clock kept — a short smoke
/// sweep gated on a single sample would gate on scheduler noise. Output
/// matrices are handed to `check` (parity / determinism) after the clock
/// stops, so verification never pollutes the measurement.
double wall_clock_run(const std::vector<Workload>& work, nsparse::core::BackendKind backend,
                      int threads, int reps, std::vector<SpgemmStats>* stats_out,
                      std::vector<CsrMatrix<float>>* matrices_out)
{
    double best = 0.0;
    for (int rep = 0; rep < std::max(1, reps); ++rep) {
        std::vector<CsrMatrix<float>> matrices;
        std::vector<SpgemmStats> stats;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& w : work) {
            nsparse::sim::Device dev = nsparse::bench::make_device(w.scale);
            nsparse::core::Options opt;
            opt.backend = backend;
            opt.executor_threads = threads;
            opt.quiet = true;  // stderr stays clean; the JSON carries the warnings
            auto out = nsparse::hash_spgemm<float>(dev, w.matrix, w.matrix, opt);
            stats.push_back(out.stats);
            matrices.push_back(std::move(out.matrix));
        }
        const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
        if (rep == 0) {
            if (stats_out != nullptr) { *stats_out = std::move(stats); }
            if (matrices_out != nullptr) { *matrices_out = std::move(matrices); }
            best = dt.count();
        } else {
            best = std::min(best, dt.count());
        }
    }
    return best;
}

/// The simulated backend's determinism contract: same simulated numbers
/// for every thread count.
bool same_simulated_results(const std::vector<SpgemmStats>& ref,
                            const std::vector<SpgemmStats>& got, const char* what)
{
    if (ref.size() != got.size()) { return false; }
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].nnz_c != got[i].nnz_c ||
            ref[i].intermediate_products != got[i].intermediate_products ||
            ref[i].seconds != got[i].seconds || ref[i].peak_bytes != got[i].peak_bytes) {
            std::fprintf(stderr,
                         "FAIL: simulated results diverged (%s, dataset %zu): "
                         "nnz %lld vs %lld, seconds %.17g vs %.17g\n",
                         what, i, static_cast<long long>(ref[i].nnz_c),
                         static_cast<long long>(got[i].nnz_c), ref[i].seconds,
                         got[i].seconds);
            return false;
        }
    }
    return true;
}

/// The cross-backend contract: byte-identical CSR output.
bool same_matrices(const std::vector<CsrMatrix<float>>& ref,
                   const std::vector<CsrMatrix<float>>& got,
                   const std::vector<Workload>& work, const char* what)
{
    if (ref.size() != got.size()) { return false; }
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (!(ref[i] == got[i])) {
            std::fprintf(stderr, "FAIL: %s not byte-identical on dataset %zu (%s)\n", what,
                         i, work[i].name.c_str());
            return false;
        }
    }
    return true;
}

const char* backend_name(nsparse::core::BackendKind b)
{
    return nsparse::core::to_string(b);
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace nsparse;

    bool smoke = false;
    bool gate = false;
    int reps = 0;  // 0 = default (3 for smoke, 1 for the full suite)
    std::string out_path = "BENCH_host_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--gate") == 0) { gate = true; }
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }
    if (const char* env = std::getenv("NSPARSE_HOST_SCALING_SMOKE");
        env != nullptr && *env != '\0' && *env != '0') {
        smoke = true;
    }

    std::vector<Workload> work;
    if (smoke) {
        // Large enough that per-row kernel work (not device construction
        // and transfers) dominates both backends — the 3x gate measures
        // execution engines, not fixed overhead.
        work.push_back({"smoke_uniform_3000",
                        convert_values<float>(gen::uniform_random(3000, 3000, 24, 7)), 1.0});
    } else {
        for (const auto& spec : gen::dataset_suite()) {
            if (spec.large_graph) { continue; }
            work.push_back({spec.name, bench::load_dataset<float>(spec.name),
                            gen::effective_scale(spec.name)});
        }
    }

    const int hw = sim::BlockExecutor::resolve_threads(0);
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw != 1 && hw != 2 && hw != 4) { thread_counts.push_back(hw); }

    std::printf("host-scaling: %zu dataset(s), hw=%d threads%s%s\n\n", work.size(), hw,
                smoke ? " [smoke]" : "", gate ? " [gate]" : "");
    std::printf("%10s %8s %12s %14s %10s %11s\n", "backend", "threads", "wall [s]",
                "simulated [s]", "speedup", "efficiency");

    bool determinism_ok = true;
    bool parity_ok = true;
    std::vector<RunResult> results;
    std::vector<std::string> warnings;

    // Reference matrices: the 1-thread simulated run (the paper pipeline).
    std::vector<CsrMatrix<float>> ref_matrices;
    std::vector<SpgemmStats> ref_stats;

    for (const auto backend : {core::BackendKind::kSimulated, core::BackendKind::kNative}) {
        double wall_seq = 0.0;
        for (const int t : thread_counts) {
            std::vector<SpgemmStats> stats;
            std::vector<CsrMatrix<float>> matrices;
            RunResult r;
            r.backend = backend;
            r.threads = t;
            r.resolved_threads = sim::BlockExecutor::resolve_threads(t);
            r.wall_seconds = wall_clock_run(work, backend, t, reps > 0 ? reps : (smoke ? 3 : 1),
                                            &stats, &matrices);
            for (const auto& s : stats) { r.simulated_seconds += s.seconds; }

            if (r.resolved_threads > hw) {
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "%s threads=%d resolved to %d but only %d hardware "
                              "thread(s) are available: oversubscribed, not a scaling point",
                              backend_name(backend), t, r.resolved_threads, hw);
                warnings.emplace_back(buf);
            }

            if (ref_matrices.empty()) {
                ref_matrices = std::move(matrices);
                ref_stats = stats;
            } else {
                if (backend == core::BackendKind::kSimulated) {
                    determinism_ok = same_simulated_results(ref_stats, stats,
                                                            "simulated thread sweep") &&
                                     determinism_ok;
                }
                parity_ok = same_matrices(ref_matrices, matrices, work,
                                          backend_name(backend)) &&
                            parity_ok;
            }
            if (t == thread_counts.front()) { wall_seq = r.wall_seconds; }
            const double speedup = r.wall_seconds > 0.0 ? wall_seq / r.wall_seconds : 0.0;
            const double lanes = std::max(1, std::min(r.resolved_threads, hw));
            std::printf("%10s %8d %12.3f %14.6f %9.2fx %10.2f\n", backend_name(backend), t,
                        r.wall_seconds, r.simulated_seconds, speedup, speedup / lanes);
            results.push_back(r);
        }
    }

    // The headline number: native vs simulated wall-clock at equal thread
    // counts (what the seed bench conflated into one column).
    std::printf("\n%8s %22s\n", "threads", "native vs simulated");
    std::vector<double> native_vs_sim(thread_counts.size(), 0.0);
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        double sim_wall = 0.0;
        double nat_wall = 0.0;
        for (const auto& r : results) {
            if (r.threads != thread_counts[ti]) { continue; }
            (r.backend == core::BackendKind::kNative ? nat_wall : sim_wall) = r.wall_seconds;
        }
        native_vs_sim[ti] = nat_wall > 0.0 ? sim_wall / nat_wall : 0.0;
        std::printf("%8d %21.2fx\n", thread_counts[ti], native_vs_sim[ti]);
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "fig2");
    std::fprintf(f, "  \"datasets\": %zu,\n  \"hardware_threads\": %d,\n", work.size(), hw);
    std::fprintf(f, "  \"determinism_ok\": %s,\n  \"parity_ok\": %s,\n",
                 determinism_ok ? "true" : "false", parity_ok ? "true" : "false");
    std::fprintf(f, "  \"warnings\": [");
    for (std::size_t i = 0; i < warnings.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\"", i == 0 ? "" : ",", warnings[i].c_str());
    }
    std::fprintf(f, "%s],\n", warnings.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"native_speedup_vs_simulated\": {");
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        std::fprintf(f, "%s\"%d\": %.3f", ti == 0 ? "" : ", ", thread_counts[ti],
                     native_vs_sim[ti]);
    }
    std::fprintf(f, "},\n  \"results\": [\n");
    // Per-backend speedup reference: that backend's own first (1-thread)
    // run — simulated wall-clock never again masquerades as the native
    // scaling baseline.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        double wall_ref = r.wall_seconds;
        for (const auto& q : results) {
            if (q.backend == r.backend && q.threads == thread_counts.front()) {
                wall_ref = q.wall_seconds;
            }
        }
        const double speedup = r.wall_seconds > 0.0 ? wall_ref / r.wall_seconds : 0.0;
        const double lanes = std::max(1, std::min(r.resolved_threads, hw));
        std::fprintf(f,
                     "    {\"backend\": \"%s\", \"threads\": %d, \"resolved_threads\": %d, "
                     "\"wall_seconds\": %.6f, \"simulated_seconds\": %.9f, "
                     "\"speedup_vs_seq\": %.3f, \"efficiency\": %.3f}%s\n",
                     backend_name(r.backend), r.threads, r.resolved_threads, r.wall_seconds,
                     r.simulated_seconds, speedup, speedup / lanes,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    bool ok = determinism_ok && parity_ok;
    if (!determinism_ok) {
        std::fprintf(stderr, "host-scaling FAILED: simulated results depend on the "
                             "executor config\n");
    }
    if (!parity_ok) {
        std::fprintf(stderr, "host-scaling FAILED: backends are not byte-identical\n");
    }
    if (gate) {
        constexpr double kMinNativeSpeedup = 3.0;
        constexpr double kCurveTolerance = 1.15;
        for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
            if (native_vs_sim[ti] < kMinNativeSpeedup) {
                std::fprintf(stderr,
                             "host-scaling GATE FAILED: native only %.2fx over simulated "
                             "at %d thread(s) (gate: >= %.1fx)\n",
                             native_vs_sim[ti], thread_counts[ti], kMinNativeSpeedup);
                ok = false;
            }
        }
        // The native thread curve must not regress (15% noise band) while
        // the added threads map onto real cores.
        double prev_wall = -1.0;
        int prev_t = 0;
        for (const auto& r : results) {
            if (r.backend != core::BackendKind::kNative || r.resolved_threads > hw) {
                continue;
            }
            if (prev_wall >= 0.0 && r.wall_seconds > prev_wall * kCurveTolerance) {
                std::fprintf(stderr,
                             "host-scaling GATE FAILED: native wall regressed from %.3fs "
                             "(%d threads) to %.3fs (%d threads)\n",
                             prev_wall, prev_t, r.wall_seconds, r.threads);
                ok = false;
            }
            prev_wall = r.wall_seconds;
            prev_t = r.threads;
        }
    }
    return ok ? 0 : 1;
}
