// Host execution-engine scaling: wall-clock of the Figure 2 workload
// (squaring every non-large-graph dataset with the proposal algorithm,
// single precision) as a function of executor threads (1/2/4/hw) and
// stream overlap on/off. Simulated results are asserted bit-identical
// across every configuration — only wall-clock may move — and the
// measured times are emitted as BENCH_host_scaling.json so the perf
// trajectory of the pool/overlap path is recorded run over run.
//
//   bench_host_scaling [--smoke] [--out FILE]
//
// --smoke (or NSPARSE_HOST_SCALING_SMOKE=1) swaps the fig2 datasets for
// one tiny synthetic matrix so the binary finishes in seconds; the
// `perf-smoke` ctest label runs it that way to catch determinism or
// gross-latency regressions in tier-1.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "gpusim/executor.hpp"
#include "matgen/generators.hpp"

namespace {

using nsparse::CsrMatrix;
using nsparse::SpgemmStats;

struct Workload {
    std::string name;
    CsrMatrix<float> matrix;
    double scale = 1.0;
};

struct RunResult {
    int threads = 0;          ///< requested executor threads (0 = hw)
    int resolved_threads = 0; ///< what the request resolved to
    bool streams = false;
    double wall_seconds = 0.0;
    double simulated_seconds = 0.0;
};

double wall_clock_run(const std::vector<Workload>& work, int threads, bool streams,
                      std::vector<SpgemmStats>* stats_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& w : work) {
        nsparse::sim::Device dev = nsparse::bench::make_device(w.scale);
        nsparse::core::Options opt;
        opt.executor_threads = threads;
        opt.use_streams = streams;
        const auto out = nsparse::hash_spgemm<float>(dev, w.matrix, w.matrix, opt);
        if (stats_out != nullptr) { stats_out->push_back(out.stats); }
    }
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count();
}

/// The determinism contract, asserted end-to-end: same simulated numbers
/// for every thread count (within one streams setting).
bool same_simulated_results(const std::vector<SpgemmStats>& ref,
                            const std::vector<SpgemmStats>& got, const char* what)
{
    if (ref.size() != got.size()) { return false; }
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].nnz_c != got[i].nnz_c ||
            ref[i].intermediate_products != got[i].intermediate_products ||
            ref[i].seconds != got[i].seconds || ref[i].peak_bytes != got[i].peak_bytes) {
            std::fprintf(stderr,
                         "FAIL: simulated results diverged (%s, dataset %zu): "
                         "nnz %lld vs %lld, seconds %.17g vs %.17g\n",
                         what, i, static_cast<long long>(ref[i].nnz_c),
                         static_cast<long long>(got[i].nnz_c), ref[i].seconds,
                         got[i].seconds);
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace nsparse;

    bool smoke = false;
    std::string out_path = "BENCH_host_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }
    if (const char* env = std::getenv("NSPARSE_HOST_SCALING_SMOKE");
        env != nullptr && *env != '\0' && *env != '0') {
        smoke = true;
    }

    std::vector<Workload> work;
    if (smoke) {
        work.push_back({"smoke_uniform_400",
                        convert_values<float>(gen::uniform_random(400, 400, 12, 7)), 1.0});
    } else {
        for (const auto& spec : gen::dataset_suite()) {
            if (spec.large_graph) { continue; }
            work.push_back({spec.name, bench::load_dataset<float>(spec.name),
                            gen::effective_scale(spec.name)});
        }
    }

    const int hw = sim::BlockExecutor::resolve_threads(0);
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw != 1 && hw != 2 && hw != 4) { thread_counts.push_back(hw); }

    std::printf("host-scaling: %zu dataset(s), hw=%d threads%s\n\n", work.size(), hw,
                smoke ? " [smoke]" : "");
    std::printf("%8s %8s %12s %14s %10s\n", "threads", "streams", "wall [s]", "simulated [s]",
                "speedup");

    bool ok = true;
    std::vector<RunResult> results;
    for (const bool streams : {false, true}) {
        std::vector<SpgemmStats> ref_stats;
        double wall_seq = 0.0;
        for (const int t : thread_counts) {
            std::vector<SpgemmStats> stats;
            RunResult r;
            r.threads = t;
            r.resolved_threads = sim::BlockExecutor::resolve_threads(t);
            r.streams = streams;
            r.wall_seconds = wall_clock_run(work, t, streams, &stats);
            for (const auto& s : stats) { r.simulated_seconds += s.seconds; }
            if (ref_stats.empty()) {
                ref_stats = stats;
                wall_seq = r.wall_seconds;
            } else {
                ok = same_simulated_results(ref_stats, stats,
                                            streams ? "streams on" : "streams off") &&
                     ok;
            }
            const double speedup = r.wall_seconds > 0.0 ? wall_seq / r.wall_seconds : 0.0;
            std::printf("%8d %8s %12.3f %14.6f %9.2fx\n", t, streams ? "on" : "off",
                        r.wall_seconds, r.simulated_seconds, speedup);
            results.push_back(r);
        }
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "fig2");
    std::fprintf(f, "  \"datasets\": %zu,\n  \"hardware_threads\": %d,\n", work.size(), hw);
    std::fprintf(f, "  \"determinism_ok\": %s,\n  \"results\": [\n", ok ? "true" : "false");
    // Reference for every speedup: the 1-thread streams-off run (the
    // seed's sequential engine).
    double wall_ref = 0.0;
    for (const auto& r : results) {
        if (r.threads == 1 && !r.streams) { wall_ref = r.wall_seconds; }
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        const double speedup = r.wall_seconds > 0.0 ? wall_ref / r.wall_seconds : 0.0;
        std::fprintf(f,
                     "    {\"threads\": %d, \"resolved_threads\": %d, \"streams\": %s, "
                     "\"wall_seconds\": %.6f, \"simulated_seconds\": %.9f, "
                     "\"speedup_vs_seq\": %.3f}%s\n",
                     r.threads, r.resolved_threads, r.streams ? "true" : "false",
                     r.wall_seconds, r.simulated_seconds, speedup,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "host-scaling FAILED: results depend on the executor config\n");
        return 1;
    }
    return 0;
}
