// Figure 6 — execution-time breakdown vs cuSPARSE, double precision.
// Same layout and expectations as Figure 5.
#include "fig_breakdown.hpp"

int main()
{
    std::printf("Figure 6: execution-time breakdown vs cuSPARSE, double precision\n\n");
    nsparse::bench::run_breakdown<double>();
    return 0;
}
