// Table I — parameter setting for each group on Tesla P100.
//
// The group table is *derived* from the device spec (§III-D); this bench
// prints the derivation next to the paper's published table so drift is
// visible at a glance. (The unit test test_grouping.cpp asserts equality.)
#include <cstdio>

#include "core/grouping.hpp"

int main()
{
    using namespace nsparse;
    const auto spec = sim::DeviceSpec::pascal_p100();
    const auto sym = core::GroupingPolicy::symbolic(spec);
    const auto num = core::GroupingPolicy::numeric(spec, sizeof(double));

    std::printf("Table I: parameter setting for each group on Tesla P100 (derived)\n\n");
    std::printf("%-9s %-22s %-22s %-11s %-12s %-4s\n", "Group ID", "(3) products range",
                "(6) nnz range", "Assignment", "TB size", "#TB");

    const auto range = [](const core::GroupInfo& g) {
        char buf[32];
        if (g.max_count < 0) {
            std::snprintf(buf, sizeof buf, "%d-", g.min_count);
        } else {
            std::snprintf(buf, sizeof buf, "%d-%d", g.min_count, g.max_count);
        }
        return std::string(buf);
    };

    for (std::size_t g = 0; g < sym.groups.size(); ++g) {
        const auto& sg = sym.groups[g];
        const auto& ng = num.groups[g];
        std::printf("%-9zu %-22s %-22s %-11s %-12d %-4d\n", g, range(sg).c_str(),
                    range(ng).c_str(),
                    sg.assignment == core::Assignment::kPwarpRow ? "PWARP/ROW" : "TB/ROW",
                    sg.block_size, sg.tb_per_sm);
    }

    std::printf("\npaper Table I:\n");
    std::printf("  0: 8193-      4097-      TB/ROW    1024  2\n");
    std::printf("  1: 4097-8192  2049-4096  TB/ROW    1024  2\n");
    std::printf("  2: 2049-4096  1025-2048  TB/ROW     512  4\n");
    std::printf("  3: 1025-2048   513-1024  TB/ROW     256  8\n");
    std::printf("  4:  513-1024   257-512   TB/ROW     128 16\n");
    std::printf("  5:   33-512     17-256   TB/ROW      64 32\n");
    std::printf("  6:    0-32       0-16    PWARP/ROW  512  4\n");

    std::printf("\nmax shared tables: symbolic %d entries (48KB/4B -> pow2), numeric %d "
                "entries (48KB/12B -> pow2)\n",
                sym.max_shared_table, num.max_shared_table);
    return 0;
}
