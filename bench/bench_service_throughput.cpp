// Service-layer throughput benchmark: what does the operand/plan cache
// buy on workloads that actually repeat operands?
//
//   1. A^k chain — P_i = P_{i-1} * A through one cached session, then the
//      identical chain again: the warm pass serves grouping, symbolic
//      planning and operand residency from the cache. Reports per-request
//      simulated-latency p50/p99 for the cold and warm passes, the cache
//      hit rates, and gates (--gate) the warm-over-cold p50 speedup at
//      >= 1.15x. Every warm product is asserted byte-identical to its
//      cold counterpart.
//
//   2. AMG triple product — the smoothed-aggregation hierarchy of a 2-D
//      Poisson operator built through solver::session_spgemm, twice on the
//      same session: the second setup's Galerkin products (A*P, R*(AP))
//      and prolongation smoothing re-submit content-identical operands and
//      run warm. Reports the setup SpGEMM seconds cold vs warm and the
//      session's plan hit rate.
//
// The whole suite runs twice and asserts identical simulated numbers;
// emits BENCH_service_throughput.json with determinism_ok.
//
//   bench_service_throughput [--smoke] [--gate] [--out FILE]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"
#include "solver/amg.hpp"

namespace {

using namespace nsparse;

double percentile(std::vector<double> v, double p)
{
    if (v.empty()) { return 0.0; }
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

struct ChainResult {
    std::vector<double> cold_s;  ///< per-request simulated seconds, cold pass
    std::vector<double> warm_s;  ///< same requests, warm pass
    double plan_hit_rate = 0.0;
    double residency_hit_rate = 0.0;
    bool identical = true;  ///< every warm product == its cold counterpart
};

/// P_i = P_{i-1} * A for i = 1..k, twice through one cached session.
ChainResult run_chain(const CsrMatrix<double>& a, int k)
{
    ChainResult r;
    SessionConfig cfg;
    cfg.cache.enabled = true;
    Session session(std::move(cfg));

    std::vector<CsrMatrix<double>> cold_products;
    const CsrMatrix<double>* left = &a;
    for (int i = 0; i < k; ++i) {
        auto res = session.multiply<double>(*left, a);
        if (!res.ok()) {
            std::fprintf(stderr, "chain cold product %d failed: %s\n", i,
                         res.error_message.c_str());
            r.identical = false;
            return r;
        }
        r.cold_s.push_back(res.out.stats.seconds);
        cold_products.push_back(std::move(res.out.matrix));
        left = &cold_products.back();
    }

    left = &a;
    for (int i = 0; i < k; ++i) {
        const auto res = session.multiply<double>(*left, a);
        if (!res.ok()) {
            std::fprintf(stderr, "chain warm product %d failed: %s\n", i,
                         res.error_message.c_str());
            r.identical = false;
            return r;
        }
        r.warm_s.push_back(res.out.stats.seconds);
        r.identical = r.identical && res.out.matrix.rpt == cold_products[to_size(i)].rpt &&
                      res.out.matrix.col == cold_products[to_size(i)].col &&
                      res.out.matrix.val == cold_products[to_size(i)].val;
        left = &cold_products[to_size(i)];
    }

    const auto& s = session.stats();
    const auto plan_total = s.cache_hits + s.cache_misses;
    const auto res_total = s.cache_residency_hits + s.cache_residency_misses;
    r.plan_hit_rate = plan_total > 0
                          ? static_cast<double>(s.cache_hits) / static_cast<double>(plan_total)
                          : 0.0;
    r.residency_hit_rate = res_total > 0 ? static_cast<double>(s.cache_residency_hits) /
                                               static_cast<double>(res_total)
                                         : 0.0;
    return r;
}

CsrMatrix<double> poisson2d(index_t n)
{
    CsrMatrix<double> m;
    m.rows = m.cols = n * n;
    m.rpt.assign(to_size(m.rows) + 1, 0);
    const auto at = [n](index_t x, index_t y) { return y * n + x; };
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const auto push = [&](index_t xx, index_t yy, double v) {
                if (xx < 0 || xx >= n || yy < 0 || yy >= n) { return; }
                m.col.push_back(at(xx, yy));
                m.val.push_back(v);
            };
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            m.rpt[to_size(at(x, y)) + 1] = to_index(m.col.size());
        }
    }
    m.validate();
    return m;
}

struct AmgResult {
    double cold_spgemm_s = 0.0;
    double warm_spgemm_s = 0.0;
    double plan_hit_rate = 0.0;
    bool ok = true;
};

/// Two identical hierarchy builds through one cached session: the second
/// one re-submits every setup operand and runs warm.
AmgResult run_amg(const CsrMatrix<double>& a)
{
    AmgResult r;
    SessionConfig cfg;
    cfg.cache.enabled = true;
    Session session(std::move(cfg));

    solver::AmgOptions opt;
    opt.spgemm = solver::session_spgemm(session);

    const solver::AmgHierarchy cold(session.device(), a, opt);
    r.cold_spgemm_s = cold.stats().spgemm_seconds;
    const solver::AmgHierarchy warm(session.device(), a, opt);
    r.warm_spgemm_s = warm.stats().spgemm_seconds;
    r.ok = cold.stats().levels == warm.stats().levels &&
           cold.stats().total_spgemm_products == warm.stats().total_spgemm_products;

    const auto& s = session.stats();
    const auto plan_total = s.cache_hits + s.cache_misses;
    r.plan_hit_rate = plan_total > 0
                          ? static_cast<double>(s.cache_hits) / static_cast<double>(plan_total)
                          : 0.0;
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    bool gate = false;
    std::string out_path = "BENCH_service_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) { smoke = true; }
        if (std::strcmp(argv[i], "--gate") == 0) { gate = true; }
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; }
    }

    const index_t n = smoke ? 200 : 400;
    const int k = smoke ? 6 : 8;
    const index_t grid = smoke ? 16 : 24;
    const auto a = gen::uniform_random(n, n, 8, 3);
    const auto pois = poisson2d(grid);
    std::printf("service-throughput: A^%d chain on %d x %d, AMG on %d x %d%s\n\n", k + 1, n,
                n, grid * grid, grid * grid, smoke ? " [smoke]" : "");

    bool ok = true;

    // ---- 1. A^k chain: cold vs warm pass --------------------------------
    const auto chain = run_chain(a, k);
    const auto chain_again = run_chain(a, k);
    bool determinism_ok = chain.cold_s == chain_again.cold_s &&
                          chain.warm_s == chain_again.warm_s &&
                          chain.identical == chain_again.identical;
    if (!chain.identical) {
        std::fprintf(stderr, "FAIL: warm chain products differ from cold bytes\n");
        ok = false;
    }
    const double cold_p50 = percentile(chain.cold_s, 0.50);
    const double cold_p99 = percentile(chain.cold_s, 0.99);
    const double warm_p50 = percentile(chain.warm_s, 0.50);
    const double warm_p99 = percentile(chain.warm_s, 0.99);
    const double speedup_p50 = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;
    std::printf("%-18s %14s %14s\n", "A^k chain", "p50 [ms]", "p99 [ms]");
    std::printf("%-18s %14.4f %14.4f\n", "cold pass", cold_p50 * 1e3, cold_p99 * 1e3);
    std::printf("%-18s %14.4f %14.4f\n", "warm pass", warm_p50 * 1e3, warm_p99 * 1e3);
    std::printf("warm speedup: x%.3f p50 (gate: >= 1.15x)\n", speedup_p50);
    std::printf("hit rates: plan %.0f%%, residency %.0f%%\n\n", chain.plan_hit_rate * 100.0,
                chain.residency_hit_rate * 100.0);
    if (gate && speedup_p50 < 1.15) {
        std::fprintf(stderr, "FAIL: warm p50 speedup x%.3f below the 1.15x gate\n",
                     speedup_p50);
        ok = false;
    }

    // ---- 2. AMG triple product: cold vs warm setup ----------------------
    const auto amg = run_amg(pois);
    const auto amg_again = run_amg(pois);
    determinism_ok = determinism_ok && amg.cold_spgemm_s == amg_again.cold_spgemm_s &&
                     amg.warm_spgemm_s == amg_again.warm_spgemm_s;
    if (!amg.ok) {
        std::fprintf(stderr, "FAIL: warm AMG setup diverged from the cold hierarchy\n");
        ok = false;
    }
    const double amg_speedup =
        amg.warm_spgemm_s > 0.0 ? amg.cold_spgemm_s / amg.warm_spgemm_s : 0.0;
    std::printf("%-18s %14s\n", "AMG setup", "SpGEMM [ms]");
    std::printf("%-18s %14.4f\n", "cold build", amg.cold_spgemm_s * 1e3);
    std::printf("%-18s %14.4f\n", "warm build", amg.warm_spgemm_s * 1e3);
    std::printf("warm speedup: x%.3f, plan hit rate %.0f%%\n", amg_speedup,
                amg.plan_hit_rate * 100.0);
    if (!determinism_ok) {
        std::fprintf(stderr, "FAIL: suite is not deterministic across reruns\n");
        ok = false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"service_throughput\",\n  \"workload\": \"%s\",\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "  \"determinism_ok\": %s,\n", (ok && determinism_ok) ? "true" : "false");
    std::fprintf(f, "  \"chain\": {\n");
    std::fprintf(f, "    \"rows\": %d,\n    \"products\": %d,\n", n, k);
    std::fprintf(f, "    \"cold_p50_seconds\": %.9f,\n    \"cold_p99_seconds\": %.9f,\n",
                 cold_p50, cold_p99);
    std::fprintf(f, "    \"warm_p50_seconds\": %.9f,\n    \"warm_p99_seconds\": %.9f,\n",
                 warm_p50, warm_p99);
    std::fprintf(f, "    \"warm_speedup_p50\": %.4f,\n", speedup_p50);
    std::fprintf(f, "    \"plan_hit_rate\": %.4f,\n", chain.plan_hit_rate);
    std::fprintf(f, "    \"residency_hit_rate\": %.4f,\n", chain.residency_hit_rate);
    std::fprintf(f, "    \"byte_identical\": %s\n  },\n", chain.identical ? "true" : "false");
    std::fprintf(f, "  \"amg\": {\n");
    std::fprintf(f, "    \"grid\": %d,\n", grid);
    std::fprintf(f, "    \"cold_spgemm_seconds\": %.9f,\n", amg.cold_spgemm_s);
    std::fprintf(f, "    \"warm_spgemm_seconds\": %.9f,\n", amg.warm_spgemm_s);
    std::fprintf(f, "    \"warm_speedup\": %.4f,\n", amg_speedup);
    std::fprintf(f, "    \"plan_hit_rate\": %.4f\n  }\n}\n", amg.plan_hit_rate);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!ok) {
        std::fprintf(stderr, "service-throughput FAILED\n");
        return 1;
    }
    return 0;
}
