// Table II — matrix dataset statistics.
//
// Prints the generated analogue's statistics (at the benchmark scale) next
// to the paper's published full-size statistics, so the structural
// signatures (nnz/row, skew, compression ratio products -> nnz(A^2)) can
// be compared directly.
#include <cstdio>
#include <string>

#include "matgen/dataset_suite.hpp"
#include "sparse/stats.hpp"

int main()
{
    using namespace nsparse;

    std::printf("Table II: matrix data (synthetic analogues at benchmark scale)\n\n");
    std::printf("%s %8s\n", format_stats_header().c_str(), "1/scale");
    for (const auto& spec : gen::dataset_suite()) {
        const auto a = gen::make_dataset(spec.name);
        const auto s = table2_stats(a, spec.name);
        std::printf("%s %8.0f\n", format_stats_row(s).c_str(),
                    gen::effective_scale(spec.name));
    }

    std::printf("\npaper Table II (full size):\n%s\n", format_stats_header().c_str());
    for (const auto& spec : gen::dataset_suite()) {
        MatrixStats s;
        s.name = spec.name;
        s.rows = to_index(spec.paper.rows);
        s.nnz = spec.paper.nnz;
        s.nnz_per_row = spec.paper.nnz_per_row;
        s.max_nnz_per_row = spec.paper.max_nnz_per_row;
        s.intermediate_products = spec.paper.intermediate_products;
        s.nnz_of_square = spec.paper.nnz_of_square;
        std::printf("%s\n", format_stats_row(s).c_str());
    }

    std::printf("\ncompression ratio (intermediate products / nnz(A^2)), ours vs paper:\n");
    for (const auto& spec : gen::dataset_suite()) {
        const auto a = gen::make_dataset(spec.name);
        const auto s = table2_stats(a, spec.name);
        const double ours = s.nnz_of_square > 0 ? static_cast<double>(s.intermediate_products) /
                                                      static_cast<double>(s.nnz_of_square)
                                                : 0.0;
        const double paper = static_cast<double>(spec.paper.intermediate_products) /
                             static_cast<double>(spec.paper.nnz_of_square);
        std::printf("  %-18s %7.2f vs %7.2f\n", spec.name.c_str(), ours, paper);
    }
    return 0;
}
