// Ablation — power-of-two tables with bit-ops vs true modulus hashing
// (§III-D: "Since the modulus operation is expensive, we utilize
// lightweight bit operations by setting t_size to powers of two").
//
// The cuSPARSE-like baseline uses modulus hashing; the proposal uses pow2
// bit-ops. This bench isolates the per-probe arithmetic cost on the
// simulated device and also sweeps hash-table load factor to show probe
// growth under linear probing.
#include <cstdio>
#include <vector>

#include "core/hash_table.hpp"
#include "gpusim/cost_model.hpp"
#include "matgen/rng.hpp"

int main()
{
    using namespace nsparse;
    const sim::CostModel m;

    std::printf("Ablation: hashing arithmetic and load factor\n\n");
    std::printf("per-probe arithmetic (cost-model cycles): pow2 bit-and %.0f vs modulus %.0f "
                "(x%.1f)\n\n",
                3.0 * m.int_op, 2.0 * m.int_op + m.modulus_op,
                (2.0 * m.int_op + m.modulus_op) / (3.0 * m.int_op));

    std::printf("linear-probing probe counts vs load factor (table 4096, random keys):\n");
    std::printf("%8s %12s %12s\n", "load", "avg probes", "max probes");
    for (const double load : {0.25, 0.5, 0.625, 0.75, 0.875, 0.9375, 1.0}) {
        gen::Pcg32 rng(42);
        std::vector<index_t> table(4096, kEmptySlot);
        const auto inserts = static_cast<int>(load * 4096);
        long long total_probes = 0;
        std::int64_t max_probes = 0;
        int done = 0;
        while (done < inserts) {
            const auto key = to_index(rng.next() & 0x7fffffffU);
            const auto r = core::hash_insert_key(std::span<index_t>(table), key);
            if (r.found) { continue; }
            total_probes += r.probes;
            max_probes = std::max(max_probes, r.probes);
            ++done;
        }
        std::printf("%8.3f %12.2f %12lld\n", load,
                    static_cast<double>(total_probes) / inserts,
                    static_cast<long long>(max_probes));
    }
    std::printf("\nthe group tables keep load <= 1 by construction (count <= t_size);\n"
                "group boundaries at powers of two mean typical load is 0.5-1.0.\n");
    return 0;
}
