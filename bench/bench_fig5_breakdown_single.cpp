// Figure 5 — execution-time breakdown vs cuSPARSE, single precision.
//
// For each matrix: setup / count / calc / cudaMalloc shares for cuSPARSE
// and the proposal, normalised so cuSPARSE's total is 1. Paper
// observations to reproduce: the proposal's gain is mostly in 'calc';
// 'setup' is negligible; cudaMalloc is substantial on Pascal and dominates
// for sparse regular matrices like Epidemiology.
#include "fig_breakdown.hpp"

int main()
{
    std::printf("Figure 5: execution-time breakdown vs cuSPARSE, single precision\n\n");
    nsparse::bench::run_breakdown<float>();
    return 0;
}
