#!/usr/bin/env bash
# Full verification sweep: tier-1 (plain build, every test) plus the
# fault/chaos/concurrency labels under both sanitizer builds.
#
#   scripts/check.sh            # tier-1 + ASan/UBSan + TSan sweeps
#   scripts/check.sh --tier1    # plain build + full ctest only
#   scripts/check.sh --asan     # ASan/UBSan build + faults/chaos labels only
#   scripts/check.sh --tsan     # TSan build + tsan/chaos labels only
#
# Build trees live under build-check/ so the developer `build/` tree is
# never clobbered. Set NSPARSE_CHECK_JOBS to bound parallelism.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${NSPARSE_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_tier1=1 run_asan=1 run_tsan=1
case "${1:-}" in
  --tier1) run_asan=0 run_tsan=0 ;;
  --asan)  run_tier1=0 run_tsan=0 ;;
  --tsan)  run_tier1=0 run_asan=0 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tier1|--asan|--tsan]" >&2; exit 2 ;;
esac

configure_and_build() { # <dir> [extra cmake args...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

echo "== check.sh: jobs=$jobs =="

if [ "$run_tier1" = 1 ]; then
  echo "== tier-1: plain build, full ctest =="
  configure_and_build build-check/plain
  ctest --test-dir build-check/plain --output-on-failure -j "$jobs"
fi

if [ "$run_asan" = 1 ]; then
  echo "== ASan/UBSan: faults + chaos + fuzz + shard + backend + cache labels =="
  configure_and_build build-check/asan -DNSPARSE_SANITIZE=address
  ctest --test-dir build-check/asan --output-on-failure -j "$jobs" -L 'faults|chaos|fuzz|shard|backend|cache'
fi

if [ "$run_tsan" = 1 ]; then
  echo "== TSan: tsan + chaos + shard + backend + cache labels =="
  configure_and_build build-check/tsan -DNSPARSE_SANITIZE=thread
  ctest --test-dir build-check/tsan --output-on-failure -j "$jobs" -L 'tsan|chaos|shard|backend|cache'
fi

echo "== check.sh: all requested sweeps passed =="
